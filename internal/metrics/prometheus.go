package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the view in the Prometheus text exposition
// format (version 0.0.4). Metric names are sanitized into the Prometheus
// alphabet and prefixed with namespace (e.g. "heron"); tags become the
// component/task/stream labels. Counters and gauges map directly;
// histograms are rendered as summaries with 0.5/0.9/0.99/1.0 quantiles
// plus _sum and _count series.
func (v *TopologyView) WritePrometheus(w io.Writer, namespace string) {
	type series struct {
		id   ID
		kind string // "counter" | "gauge" | "summary"
	}
	all := make([]series, 0, len(v.Counters)+len(v.Gauges)+len(v.Histograms))
	for id := range v.Counters {
		all = append(all, series{id, "counter"})
	}
	for id := range v.Gauges {
		all = append(all, series{id, "gauge"})
	}
	for id := range v.Histograms {
		all = append(all, series{id, "summary"})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].id.less(all[j].id) })

	lastTyped := ""
	for _, s := range all {
		name := promName(namespace, s.id.Name)
		if name != lastTyped {
			fmt.Fprintf(w, "# TYPE %s %s\n", name, s.kind)
			lastTyped = name
		}
		switch s.kind {
		case "counter":
			fmt.Fprintf(w, "%s%s %d\n", name, promLabels(s.id.Tags, "", 0), v.Counters[s.id])
		case "gauge":
			fmt.Fprintf(w, "%s%s %d\n", name, promLabels(s.id.Tags, "", 0), v.Gauges[s.id])
		case "summary":
			hs := v.Histograms[s.id]
			for _, q := range []float64{0.5, 0.9, 0.99, 1} {
				fmt.Fprintf(w, "%s%s %d\n", name, promLabels(s.id.Tags, "quantile", q), hs.Quantile(q))
			}
			fmt.Fprintf(w, "%s_sum%s %d\n", name, promLabels(s.id.Tags, "", 0), hs.Sum)
			fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(s.id.Tags, "", 0), hs.Count)
		}
	}
}

// promName sanitizes a taxonomy name into the Prometheus metric-name
// alphabet: "instance.execute-count" → "<ns>_instance_execute_count".
func promName(namespace, name string) string {
	var b strings.Builder
	if namespace != "" {
		b.WriteString(namespace)
		b.WriteByte('_')
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if b.Len() == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders the label set for one series; extraKey (when
// non-empty) appends a float label such as quantile="0.99".
func promLabels(t Tags, extraKey string, extraVal float64) string {
	return promLabelsTopo("", t, extraKey, extraVal)
}

// promLabelsTopo is promLabels plus a leading topology label, used by the
// cluster-wide exposition where series from many topologies share one
// page and must stay distinguishable.
func promLabelsTopo(topology string, t Tags, extraKey string, extraVal float64) string {
	var parts []string
	if topology != "" {
		parts = append(parts, fmt.Sprintf("topology=%q", topology))
	}
	if t.Component != "" {
		parts = append(parts, fmt.Sprintf("component=%q", t.Component))
	}
	// Task 0 is a valid task id; emit the label whenever the metric is
	// component-scoped so per-task series stay distinguishable.
	if t.Component != "" {
		parts = append(parts, fmt.Sprintf("task=\"%d\"", t.Task))
	}
	if t.Stream != "" {
		parts = append(parts, fmt.Sprintf("stream=%q", t.Stream))
	}
	if extraKey != "" {
		parts = append(parts, fmt.Sprintf("%s=\"%g\"", extraKey, extraVal))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}
