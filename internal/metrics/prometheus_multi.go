package metrics

import (
	"fmt"
	"io"
	"sort"
)

// WritePrometheusMulti renders many topologies' views on one Prometheus
// exposition page, namespacing every series with a topology label. Series
// of the same metric family are grouped across topologies (one # TYPE
// line per family, as the exposition format requires), sorted by family,
// then topology, then tags — the cluster-wide /metrics endpoint.
func WritePrometheusMulti(w io.Writer, namespace string, views map[string]*TopologyView) {
	type series struct {
		pname string // sanitized family name
		topo  string
		kind  string // "counter" | "gauge" | "summary"
		id    ID
	}
	var all []series
	for topo, v := range views {
		if v == nil {
			continue
		}
		for id := range v.Counters {
			all = append(all, series{promName(namespace, id.Name), topo, "counter", id})
		}
		for id := range v.Gauges {
			all = append(all, series{promName(namespace, id.Name), topo, "gauge", id})
		}
		for id := range v.Histograms {
			all = append(all, series{promName(namespace, id.Name), topo, "summary", id})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].pname != all[j].pname {
			return all[i].pname < all[j].pname
		}
		if all[i].topo != all[j].topo {
			return all[i].topo < all[j].topo
		}
		return all[i].id.less(all[j].id)
	})

	lastTyped := ""
	for _, s := range all {
		if s.pname != lastTyped {
			fmt.Fprintf(w, "# TYPE %s %s\n", s.pname, s.kind)
			lastTyped = s.pname
		}
		v := views[s.topo]
		switch s.kind {
		case "counter":
			fmt.Fprintf(w, "%s%s %d\n", s.pname, promLabelsTopo(s.topo, s.id.Tags, "", 0), v.Counters[s.id])
		case "gauge":
			fmt.Fprintf(w, "%s%s %d\n", s.pname, promLabelsTopo(s.topo, s.id.Tags, "", 0), v.Gauges[s.id])
		case "summary":
			hs := v.Histograms[s.id]
			for _, q := range []float64{0.5, 0.9, 0.99, 1} {
				fmt.Fprintf(w, "%s%s %d\n", s.pname, promLabelsTopo(s.topo, s.id.Tags, "quantile", q), hs.Quantile(q))
			}
			fmt.Fprintf(w, "%s_sum%s %d\n", s.pname, promLabelsTopo(s.topo, s.id.Tags, "", 0), hs.Sum)
			fmt.Fprintf(w, "%s_count%s %d\n", s.pname, promLabelsTopo(s.topo, s.id.Tags, "", 0), hs.Count)
		}
	}
}
