package metrics

import (
	"sort"
	"time"
)

// Engine metric taxonomy. Instance metrics are tagged with the component
// and task they belong to; Stream Manager metrics carry the reserved
// StmgrComponent and the container id as task. User metrics registered
// through api.TopologyContext.Metrics() are prefixed with UserPrefix.
const (
	// Per-instance (tags: component, task).
	MExecuteCount    = "instance.execute-count"    // tuples executed by a bolt
	MExecuteLatency  = "instance.execute-latency"  // ns spent inside Bolt.Execute (sampled 1-in-8)
	MEmitCount       = "instance.emit-count"       // tuples emitted
	MAckCount        = "instance.ack-count"        // tuples acked
	MFailCount       = "instance.fail-count"       // tuples failed
	MCompleteLatency = "instance.complete-latency" // ns from spout emit to tree completion
	MSpoutPending    = "spout.pending"             // un-acked tuples in flight (gauge)

	// Per-Stream-Manager (tags: StmgrComponent, container id as task).
	MStmgrTuplesIn       = "stmgr.tuples-in"
	MStmgrTuplesFwd      = "stmgr.tuples-forwarded"
	MStmgrAcksRouted     = "stmgr.acks-routed"
	MStmgrCacheDrains    = "stmgr.cache-drain-count"        // drain-timer flushes
	MStmgrCacheDepth     = "stmgr.cache-depth"              // tuples buffered in the cache (gauge)
	MStmgrBytesSent      = "stmgr.bytes-sent"               // bytes written to instances and peers
	MStmgrBytesReceived  = "stmgr.bytes-received"           // bytes arriving at the router
	MStmgrBPTransitions  = "stmgr.backpressure-transitions" // assert/release edges
	MStmgrBPAssertedTime = "stmgr.backpressure-time-ns"     // total ns spent asserted
	MStmgrBPActive       = "stmgr.backpressure-active"      // 1 while this container asserts backpressure (gauge)
	// MStmgrRouteLatency is the sharded data path's per-frame route
	// latency — dispatch-ring enqueue to delivery handoff, sampled 1-in-8
	// — recorded in a lock-free HDR histogram so /metrics and the
	// TopologyView report p50/p99/p999 tails, not just averages. Published
	// only when StmgrShards > 1 (the inline single-shard path has no
	// dispatch stage to time).
	MStmgrRouteLatency = "stmgr.route-latency-ns"

	// Checkpointing. Duration/size/restore are per-instance (tags:
	// component, task); epoch is per-Stream-Manager (tags: StmgrComponent,
	// container id as task) and tracks the last committed checkpoint id.
	MCheckpointDuration = "checkpoint.duration"   // ns to capture+persist one snapshot
	MCheckpointSize     = "checkpoint.size_bytes" // encoded snapshot bytes
	MCheckpointEpoch    = "checkpoint.epoch"      // latest globally-committed checkpoint id (gauge)
	MRestoreCount       = "restore.count"         // state restores performed after recovery

	// Health manager (tags: the affected component, task 0). Counters
	// accumulate per evaluation tick while the condition holds; the
	// histogram records wall time of each runtime rescale.
	MHealthSymptoms        = "healthmgr.symptoms"         // symptoms raised
	MHealthDiagnoses       = "healthmgr.diagnoses"        // diagnoses produced
	MHealthActions         = "healthmgr.resolver-actions" // resolver actions taken
	MHealthRescaleDuration = "healthmgr.rescale-duration" // ns per runtime rescale

	// Replicated control plane (tags: component = replica node id).
	// Role is 1 for the leader and 0 for standbys; term is the replica's
	// last observed fencing term; failover latency is the leader's
	// loss-of-leader → promoted wall time.
	MReplicationRole            = "replication.role"
	MReplicationTerm            = "replication.term"
	MReplicationFailoverLatency = "replication.failover-latency-ns"
)

// UserPrefix namespaces metrics registered by user components so they can
// never collide with the engine taxonomy.
const UserPrefix = "user."

// TopologyView is the topology-wide typed metrics view: every container's
// latest Snapshot merged by metric identity. It is what the Topology
// Master serves to heron.Handle.Metrics() and the HTTP endpoints.
type TopologyView struct {
	// TakenAt is the newest merged snapshot's capture time.
	TakenAt    time.Time
	Counters   map[ID]int64
	Gauges     map[ID]int64
	Histograms map[ID]HistogramSnapshot
}

// NewView returns an empty view.
func NewView() *TopologyView {
	return &TopologyView{
		Counters:   map[ID]int64{},
		Gauges:     map[ID]int64{},
		Histograms: map[ID]HistogramSnapshot{},
	}
}

// Add merges one container snapshot into the view. Metric identities are
// globally unique across containers (tasks live in exactly one container),
// so later snapshots for the same identity replace earlier ones.
func (v *TopologyView) Add(s *Snapshot) {
	if s == nil {
		return
	}
	if at := time.Unix(0, s.TakenAtUnixNs); at.After(v.TakenAt) {
		v.TakenAt = at
	}
	for _, p := range s.Counters {
		v.Counters[p.ID] = p.Value
	}
	for _, p := range s.Gauges {
		v.Gauges[p.ID] = p.Value
	}
	for _, p := range s.Histograms {
		v.Histograms[p.ID] = p.HistogramSnapshot
	}
}

// MergeSnapshots builds a view from a set of container snapshots.
func MergeSnapshots(snaps ...*Snapshot) *TopologyView {
	v := NewView()
	for _, s := range snaps {
		v.Add(s)
	}
	return v
}

// match reports whether id belongs to metric name, restricted to
// component when component != "".
func match(id ID, name, component string) bool {
	return id.Name == name && (component == "" || id.Component == component)
}

// Counter sums the named counter across every task of component
// (component "" sums the whole topology).
func (v *TopologyView) Counter(name, component string) int64 {
	var total int64
	for id, val := range v.Counters {
		if match(id, name, component) {
			total += val
		}
	}
	return total
}

// Gauge sums the named gauge across every task of component (component ""
// sums the whole topology) — e.g. total spout.pending across spout tasks.
func (v *TopologyView) Gauge(name, component string) int64 {
	var total int64
	for id, val := range v.Gauges {
		if match(id, name, component) {
			total += val
		}
	}
	return total
}

// Histogram merges the named histogram across every task of component
// (component "" merges the whole topology): counts and sums add, and the
// quantile reservoirs concatenate, giving topology-wide quantile
// summaries.
func (v *TopologyView) Histogram(name, component string) HistogramSnapshot {
	var out HistogramSnapshot
	for id, hs := range v.Histograms {
		if match(id, name, component) {
			out.merge(hs)
		}
	}
	sort.Slice(out.Sample, func(i, j int) bool { return out.Sample[i] < out.Sample[j] })
	return out
}

// TaskCounter returns the named counter of one specific task, and whether
// it exists.
func (v *TopologyView) TaskCounter(name, component string, task int32) (int64, bool) {
	val, ok := v.Counters[ID{Name: name, Tags: Tags{Component: component, Task: task}}]
	return val, ok
}

// Components returns the sorted distinct component tags present in the
// view (including StmgrComponent when stream-manager metrics are present).
func (v *TopologyView) Components() []string {
	seen := map[string]bool{}
	for id := range v.Counters {
		seen[id.Component] = true
	}
	for id := range v.Gauges {
		seen[id.Component] = true
	}
	for id := range v.Histograms {
		seen[id.Component] = true
	}
	delete(seen, "")
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// HistogramSummary is one histogram's identity plus quantile summary in a
// ViewDump.
type HistogramSummary struct {
	ID
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P90   int64 `json:"p90"`
	P99   int64 `json:"p99"`
	P999  int64 `json:"p999"`
}

// ViewDump is the JSON-friendly flattening of a TopologyView, served by
// the observability server's /topology endpoint. Points are sorted by
// identity.
type ViewDump struct {
	TakenAtUnixNs int64              `json:"takenAtUnixNs"`
	Counters      []CounterPoint     `json:"counters"`
	Gauges        []GaugePoint       `json:"gauges"`
	Histograms    []HistogramSummary `json:"histograms"`
}

// Dump flattens the view deterministically.
func (v *TopologyView) Dump() ViewDump {
	d := ViewDump{
		TakenAtUnixNs: v.TakenAt.UnixNano(),
		Counters:      make([]CounterPoint, 0, len(v.Counters)),
		Gauges:        make([]GaugePoint, 0, len(v.Gauges)),
		Histograms:    make([]HistogramSummary, 0, len(v.Histograms)),
	}
	for id, val := range v.Counters {
		d.Counters = append(d.Counters, CounterPoint{ID: id, Value: val})
	}
	for id, val := range v.Gauges {
		d.Gauges = append(d.Gauges, GaugePoint{ID: id, Value: val})
	}
	for id, hs := range v.Histograms {
		d.Histograms = append(d.Histograms, HistogramSummary{
			ID: id, Count: hs.Count, Sum: hs.Sum, Min: hs.Min, Max: hs.Max,
			P50: hs.Quantile(0.5), P90: hs.Quantile(0.9), P99: hs.Quantile(0.99),
			P999: hs.Quantile(0.999),
		})
	}
	sort.Slice(d.Counters, func(i, j int) bool { return d.Counters[i].ID.less(d.Counters[j].ID) })
	sort.Slice(d.Gauges, func(i, j int) bool { return d.Gauges[i].ID.less(d.Gauges[j].ID) })
	sort.Slice(d.Histograms, func(i, j int) bool { return d.Histograms[i].ID.less(d.Histograms[j].ID) })
	return d
}

// Names returns the sorted distinct metric names present in the view.
func (v *TopologyView) Names() []string {
	seen := map[string]bool{}
	for id := range v.Counters {
		seen[id.Name] = true
	}
	for id := range v.Gauges {
		seen[id.Name] = true
	}
	for id := range v.Histograms {
		seen[id.Name] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
