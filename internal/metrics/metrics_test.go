package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	tags := Tags{Component: "word", Task: 3}
	c := r.Counter("tuples", tags)
	c.Inc(5)
	c.Inc(2)
	if c.Value() != 7 {
		t.Errorf("counter = %d", c.Value())
	}
	if r.Counter("tuples", tags) != c {
		t.Error("counter not memoized")
	}
	if r.Counter("tuples", Tags{Component: "word", Task: 4}) == c {
		t.Error("distinct tags must give distinct counters")
	}
	g := r.Gauge("queue", tags)
	g.Set(10)
	g.Set(3)
	if g.Value() != 3 {
		t.Errorf("gauge = %d", g.Value())
	}
}

func TestHistogramExactStats(t *testing.T) {
	h := NewHistogram(16)
	for _, v := range []int64{5, 1, 9, 3} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 || s.Sum != 18 || s.Min != 1 || s.Max != 9 {
		t.Errorf("snapshot = %+v", s)
	}
	if s.Mean() != 4.5 {
		t.Errorf("mean = %v", s.Mean())
	}
	if q := s.Quantile(0); q != 1 {
		t.Errorf("q0 = %d", q)
	}
	if q := s.Quantile(1); q != 9 {
		t.Errorf("q1 = %d", q)
	}
}

func TestHistogramEmpty(t *testing.T) {
	s := NewHistogram(8).Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.Mean() != 0 || s.Quantile(0.5) != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
}

func TestHistogramReservoirBounded(t *testing.T) {
	h := NewHistogram(32)
	for i := int64(0); i < 10000; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if s.Count != 10000 || len(s.Sample) != 32 {
		t.Errorf("count=%d sample=%d", s.Count, len(s.Sample))
	}
	if s.Min != 0 || s.Max != 9999 {
		t.Errorf("min/max = %d/%d", s.Min, s.Max)
	}
	// Median of 0..9999 should be roughly in the middle; reservoir
	// sampling keeps it within a loose band.
	if q := s.Quantile(0.5); q < 1000 || q > 9000 {
		t.Errorf("median = %d, way off", q)
	}
}

// TestHistogramReservoirAtCapacityBoundary pins the reservoir behaviour at
// exactly the capacity boundary: with exactly cap observations the sample
// is the complete, exact data set; one more observation must keep the
// sample at cap while count/sum stay exact.
func TestHistogramReservoirAtCapacityBoundary(t *testing.T) {
	const capacity = 64
	h := NewHistogram(capacity)
	for i := int64(1); i <= capacity; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if s.Count != capacity || len(s.Sample) != capacity {
		t.Fatalf("at capacity: count=%d sample=%d", s.Count, len(s.Sample))
	}
	// Exactly at capacity the sample is exact and sorted: 1..cap.
	for i, v := range s.Sample {
		if v != int64(i+1) {
			t.Fatalf("sample[%d] = %d, want %d (exact below capacity)", i, v, i+1)
		}
	}
	if q := s.Quantile(1); q != capacity {
		t.Errorf("q1 = %d, want %d", q, capacity)
	}

	h.Observe(capacity + 1)
	s = h.Snapshot()
	if s.Count != capacity+1 || len(s.Sample) != capacity {
		t.Errorf("past capacity: count=%d sample=%d", s.Count, len(s.Sample))
	}
	if want := int64(capacity+1) * (capacity + 2) / 2; s.Sum != want {
		t.Errorf("sum = %d, want %d (sum stays exact past capacity)", s.Sum, want)
	}
	if s.Max != capacity+1 {
		t.Errorf("max = %d, want %d", s.Max, capacity+1)
	}
}

// TestHistogramConcurrentObserveQuantile hammers Observe from several
// goroutines while others continuously snapshot and read quantiles; run
// with -race this doubles as the data-race check for the reservoir.
func TestHistogramConcurrentObserveQuantile(t *testing.T) {
	h := NewHistogram(64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := int64(0); i < 5000; i++ {
				h.Observe(seed*10_000 + i)
			}
		}(int64(w))
	}
	var readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Snapshot()
				if q := s.Quantile(0.99); q < 0 {
					t.Error("negative quantile")
					return
				}
				if int64(len(s.Sample)) > s.Count {
					t.Errorf("sample %d > count %d", len(s.Sample), s.Count)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := h.Snapshot().Count; got != 20000 {
		t.Errorf("count = %d", got)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	tags := Tags{Component: "c", Task: 1}
	r.Counter("a", tags).Inc(1)
	r.Gauge("b", tags).Set(2)
	r.Histogram("h", tags).Observe(3)
	s := r.Snapshot(7)
	if s.Container != 7 || len(s.Counters) != 1 || len(s.Gauges) != 1 || len(s.Histograms) != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Counters[0].Name != "a" || s.Counters[0].Component != "c" || s.Counters[0].Value != 1 {
		t.Errorf("counter point = %+v", s.Counters[0])
	}
	if s.Gauges[0].Value != 2 || s.Histograms[0].Count != 1 {
		t.Errorf("points = %+v %+v", s.Gauges[0], s.Histograms[0])
	}
	if s.TakenAtUnixNs == 0 {
		t.Error("snapshot not timestamped")
	}
}

func TestViewMergesAcrossContainers(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter(MExecuteCount, Tags{Component: "count", Task: 1}).Inc(10)
	r2.Counter(MExecuteCount, Tags{Component: "count", Task: 2}).Inc(32)
	r2.Counter(MExecuteCount, Tags{Component: "other", Task: 3}).Inc(5)
	r1.Gauge(MSpoutPending, Tags{Component: "word", Task: 0}).Set(7)
	r2.Gauge(MSpoutPending, Tags{Component: "word", Task: 4}).Set(9)
	for i := int64(1); i <= 100; i++ {
		r1.Histogram(MExecuteLatency, Tags{Component: "count", Task: 1}).Observe(i)
		r2.Histogram(MExecuteLatency, Tags{Component: "count", Task: 2}).Observe(1000 + i)
	}
	s1, s2 := r1.Snapshot(1), r2.Snapshot(2)

	v := MergeSnapshots(&s1, &s2)
	if got := v.Counter(MExecuteCount, "count"); got != 42 {
		t.Errorf("component counter = %d, want 42", got)
	}
	if got := v.Counter(MExecuteCount, ""); got != 47 {
		t.Errorf("topology counter = %d, want 47", got)
	}
	if got, ok := v.TaskCounter(MExecuteCount, "count", 2); !ok || got != 32 {
		t.Errorf("task counter = %d,%v", got, ok)
	}
	if got := v.Gauge(MSpoutPending, "word"); got != 16 {
		t.Errorf("gauge sum = %d, want 16", got)
	}
	hs := v.Histogram(MExecuteLatency, "count")
	if hs.Count != 200 || hs.Min != 1 || hs.Max != 1100 {
		t.Errorf("merged histogram = %+v", hs)
	}
	// Quantiles span both containers' reservoirs.
	if q := hs.Quantile(0.99); q < 1000 {
		t.Errorf("p99 = %d, should land in the slow container's range", q)
	}
	if comps := v.Components(); len(comps) != 3 {
		t.Errorf("components = %v", comps)
	}
	// Re-adding a newer snapshot replaces, never double-counts.
	r1.Counter(MExecuteCount, Tags{Component: "count", Task: 1}).Inc(1)
	s1b := r1.Snapshot(1)
	v.Add(&s1b)
	if got := v.Counter(MExecuteCount, "count"); got != 43 {
		t.Errorf("after re-add = %d, want 43", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(MExecuteCount, Tags{Component: "count", Task: 3}).Inc(9)
	r.Gauge(MSpoutPending, Tags{Component: "word", Task: 1}).Set(4)
	r.Histogram(MExecuteLatency, Tags{Component: "count", Task: 3}).Observe(100)
	s := r.Snapshot(1)
	v := MergeSnapshots(&s)

	var b strings.Builder
	v.WritePrometheus(&b, "heron")
	out := b.String()
	for _, want := range []string{
		"# TYPE heron_instance_execute_count counter",
		`heron_instance_execute_count{component="count",task="3"} 9`,
		"# TYPE heron_spout_pending gauge",
		`heron_spout_pending{component="word",task="1"} 4`,
		"# TYPE heron_instance_execute_latency summary",
		`heron_instance_execute_latency{component="count",task="3",quantile="0.99"} 100`,
		`heron_instance_execute_latency_count{component="count",task="3"} 1`,
		`heron_instance_execute_latency_sum{component="count",task="3"} 100`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestManagerExports(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", Tags{}).Inc(1)
	var mu sync.Mutex
	var got []Snapshot
	m := NewManager(3, r, 10*time.Millisecond, func(s Snapshot) {
		mu.Lock()
		got = append(got, s)
		mu.Unlock()
	})
	m.Start()
	time.Sleep(50 * time.Millisecond)
	m.Stop()
	mu.Lock()
	defer mu.Unlock()
	if len(got) < 2 {
		t.Fatalf("exports = %d", len(got))
	}
	last := got[len(got)-1]
	if last.Container != 3 || len(last.Counters) != 1 || last.Counters[0].Value != 1 {
		t.Errorf("last = %+v", last)
	}
}
