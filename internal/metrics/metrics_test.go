package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tuples")
	c.Inc(5)
	c.Inc(2)
	if c.Value() != 7 {
		t.Errorf("counter = %d", c.Value())
	}
	if r.Counter("tuples") != c {
		t.Error("counter not memoized")
	}
	g := r.Gauge("queue")
	g.Set(10)
	g.Set(3)
	if g.Value() != 3 {
		t.Errorf("gauge = %d", g.Value())
	}
}

func TestHistogramExactStats(t *testing.T) {
	h := NewHistogram(16)
	for _, v := range []int64{5, 1, 9, 3} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 || s.Sum != 18 || s.Min != 1 || s.Max != 9 {
		t.Errorf("snapshot = %+v", s)
	}
	if s.Mean() != 4.5 {
		t.Errorf("mean = %v", s.Mean())
	}
	if q := s.Quantile(0); q != 1 {
		t.Errorf("q0 = %d", q)
	}
	if q := s.Quantile(1); q != 9 {
		t.Errorf("q1 = %d", q)
	}
}

func TestHistogramEmpty(t *testing.T) {
	s := NewHistogram(8).Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.Mean() != 0 || s.Quantile(0.5) != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
}

func TestHistogramReservoirBounded(t *testing.T) {
	h := NewHistogram(32)
	for i := int64(0); i < 10000; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if s.Count != 10000 || len(s.sample) != 32 {
		t.Errorf("count=%d sample=%d", s.Count, len(s.sample))
	}
	if s.Min != 0 || s.Max != 9999 {
		t.Errorf("min/max = %d/%d", s.Min, s.Max)
	}
	// Median of 0..9999 should be roughly in the middle; reservoir
	// sampling keeps it within a loose band.
	if q := s.Quantile(0.5); q < 1000 || q > 9000 {
		t.Errorf("median = %d, way off", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8000 {
		t.Errorf("count = %d", got)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc(1)
	r.Gauge("b").Set(2)
	r.Histogram("c").Observe(3)
	s := r.Snapshot(7)
	if s.Container != 7 || s.Counters["a"] != 1 || s.Gauges["b"] != 2 || s.Histos["c"].Count != 1 {
		t.Errorf("snapshot = %+v", s)
	}
}

func TestManagerExports(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc(1)
	var mu sync.Mutex
	var got []Snapshot
	m := NewManager(3, r, 10*time.Millisecond, func(s Snapshot) {
		mu.Lock()
		got = append(got, s)
		mu.Unlock()
	})
	m.Start()
	time.Sleep(50 * time.Millisecond)
	m.Stop()
	mu.Lock()
	defer mu.Unlock()
	if len(got) < 2 {
		t.Fatalf("exports = %d", len(got))
	}
	last := got[len(got)-1]
	if last.Container != 3 || last.Counters["x"] != 1 {
		t.Errorf("last = %+v", last)
	}
}
