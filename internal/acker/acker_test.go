package acker

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// collector records outcomes.
type collector struct {
	mu   sync.Mutex
	done map[uint64]Result
}

func newCollector() *collector { return &collector{done: map[uint64]Result{}} }

func (c *collector) cb(root uint64, r Result) {
	c.mu.Lock()
	c.done[root] = r
	c.mu.Unlock()
}

func (c *collector) get(root uint64) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.done[root]
	return r, ok
}

func TestSimpleTreeCompletes(t *testing.T) {
	c := newCollector()
	a := New(3, c.cb)
	const root, k1 = 100, 7777
	// Spout emits one tuple (key k1) in tree root.
	a.Anchor(root, k1)
	if a.Pending() != 1 {
		t.Fatalf("pending = %d", a.Pending())
	}
	// Terminal bolt acks it with no children: delta = k1.
	a.Ack(root, k1)
	if r, ok := c.get(root); !ok || r != Completed {
		t.Fatalf("result = %v, %v", r, ok)
	}
	if a.Pending() != 0 {
		t.Errorf("pending = %d", a.Pending())
	}
}

func TestMultiLevelTree(t *testing.T) {
	c := newCollector()
	a := New(3, c.cb)
	const root = 1
	k1, k2, k3 := uint64(11), uint64(22), uint64(33)
	a.Anchor(root, k1) // spout emits k1
	// Bolt A processes k1, emits k2 and k3: delta = k1^k2^k3.
	a.Ack(root, k1^k2^k3)
	if _, ok := c.get(root); ok {
		t.Fatal("tree completed early")
	}
	a.Ack(root, k2) // leaf acks
	if _, ok := c.get(root); ok {
		t.Fatal("tree completed early")
	}
	a.Ack(root, k3)
	if r, ok := c.get(root); !ok || r != Completed {
		t.Fatalf("result = %v, %v", r, ok)
	}
}

func TestAckPermutationProperty(t *testing.T) {
	// Any interleaving order of anchor/ack deltas completes the tree and
	// never completes it before the last delta arrives: XOR algebra.
	f := func(seed int64, nKeys uint8) bool {
		n := int(nKeys%16) + 1
		rng := rand.New(rand.NewSource(seed))
		keys := make([]uint64, n)
		seen := map[uint64]bool{0: true}
		for i := range keys {
			for {
				k := rng.Uint64()
				if !seen[k] {
					keys[i], seen[k] = k, true
					break
				}
			}
		}
		// Tree: spout emits keys[0]; each keys[i] acks while creating
		// keys[i+1] (a chain). Deltas: anchor(keys[0]),
		// ack(keys[i]^keys[i+1])..., ack(keys[n-1]).
		deltas := []uint64{keys[0]}
		for i := 0; i+1 < n; i++ {
			deltas = append(deltas, keys[i]^keys[i+1])
		}
		deltas = append(deltas, keys[n-1])
		rng.Shuffle(len(deltas), func(i, j int) { deltas[i], deltas[j] = deltas[j], deltas[i] })

		c := newCollector()
		a := New(3, c.cb)
		const root = 42
		for i, d := range deltas {
			a.Ack(root, d)
			_, done := c.get(root)
			if done != (i == len(deltas)-1) {
				// Early completion is possible if a shuffled prefix happens
				// to XOR to zero — legal for the algebra only when the
				// prefix is the whole multiset. With distinct random keys a
				// strict prefix XORs to zero with negligible probability,
				// but deltas share keys, so a prefix can legitimately
				// cancel. Accept early zero only if the remaining suffix
				// also XORs to zero overall.
				rest := uint64(0)
				for _, r := range deltas[i+1:] {
					rest ^= r
				}
				if rest != 0 {
					return false
				}
			}
		}
		r, ok := c.get(root)
		return ok && r == Completed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFail(t *testing.T) {
	c := newCollector()
	a := New(3, c.cb)
	a.Anchor(5, 123)
	a.Fail(5)
	if r, _ := c.get(5); r != Failed {
		t.Errorf("result = %v", r)
	}
	if a.Pending() != 0 {
		t.Error("failed tree still pending")
	}
	// Failing an unknown root is a no-op.
	a.Fail(999)
	if _, ok := c.get(999); ok {
		t.Error("unknown root reported")
	}
}

func TestRotationTimesOut(t *testing.T) {
	c := newCollector()
	a := New(3, c.cb)
	a.Anchor(1, 10)
	a.Rotate()
	a.Rotate()
	if _, ok := c.get(1); ok {
		t.Fatal("timed out too early (still within window)")
	}
	a.Rotate() // third rotation pushes it off the end
	if r, ok := c.get(1); !ok || r != TimedOut {
		t.Fatalf("result = %v, %v", r, ok)
	}
}

func TestProgressRefreshesTimeout(t *testing.T) {
	c := newCollector()
	a := New(3, c.cb)
	a.Anchor(1, 10)
	for i := 0; i < 10; i++ {
		a.Rotate()
		a.Ack(1, uint64(1000+i)) // progress: entry moves to newest bucket
	}
	if _, ok := c.get(1); ok {
		t.Fatal("active tree timed out despite progress")
	}
}

func TestMinimumBuckets(t *testing.T) {
	a := New(0, nil)
	a.Anchor(1, 1)
	a.Rotate()
	a.Rotate() // must not panic with clamped bucket count
}

func TestConcurrentAcks(t *testing.T) {
	c := newCollector()
	a := New(4, c.cb)
	const trees = 64
	var wg sync.WaitGroup
	for root := uint64(1); root <= trees; root++ {
		wg.Add(1)
		go func(root uint64) {
			defer wg.Done()
			k1, k2 := root*10+1, root*10+2
			a.Anchor(root, k1)
			a.Ack(root, k1^k2)
			a.Ack(root, k2)
		}(root)
	}
	wg.Wait()
	for root := uint64(1); root <= trees; root++ {
		if r, ok := c.get(root); !ok || r != Completed {
			t.Errorf("tree %d = %v, %v", root, r, ok)
		}
	}
}

func BenchmarkAckerTree(b *testing.B) {
	a := New(3, func(uint64, Result) {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := uint64(i + 1)
		k1, k2 := root^0xaaaa, root^0x5555
		a.Anchor(root, k1)
		a.Ack(root, k1^k2)
		a.Ack(root, k2)
	}
}
