// Package acker implements Heron's at-least-once delivery tracking: the
// XOR tuple-tree algorithm over a rotating-bucket map, as introduced by
// Storm and retained by Heron's Stream Manager.
//
// Every spout tuple starts a tree identified by a random 64-bit root id.
// The tree's entry holds the XOR of (a) every tuple key created in the
// tree and (b) every tuple key acknowledged in it. Each ack carries
// delta = ackedKey ⊕ (keys of tuples emitted while processing it), so the
// entry reaches zero exactly when every tuple in the tree has been both
// created and acked — regardless of arrival order. Timeouts are tracked
// by bucket rotation: entries live in the newest bucket and expire when
// their bucket falls off the end.
package acker

import "sync"

// Result describes a completed tuple tree.
type Result uint8

// Tree outcomes reported to the completion callback.
const (
	// Completed: every tuple in the tree was acked.
	Completed Result = iota + 1
	// Failed: a bolt explicitly failed a tuple of the tree.
	Failed
	// TimedOut: the tree did not complete within the rotation window.
	TimedOut
)

// String implements fmt.Stringer.
func (r Result) String() string {
	switch r {
	case Completed:
		return "completed"
	case Failed:
		return "failed"
	case TimedOut:
		return "timedout"
	default:
		return "unknown"
	}
}

// Acker tracks the tuple trees rooted at one set of spout tasks (in Heron,
// the acker state lives in the Stream Manager of the container hosting
// the spout). It is safe for concurrent use.
type Acker struct {
	mu      sync.Mutex
	buckets []map[uint64]uint64 // buckets[0] is newest
	// onDone is called outside the lock with each tree's outcome.
	onDone func(root uint64, r Result)
}

// DefaultBuckets is the rotation granularity: a tree times out after
// between (buckets-1) and buckets rotations.
const DefaultBuckets = 3

// New creates an Acker with n rotation buckets (minimum 2) that reports
// every finished tree to onDone.
func New(n int, onDone func(root uint64, r Result)) *Acker {
	if n < 2 {
		n = 2
	}
	a := &Acker{buckets: make([]map[uint64]uint64, n), onDone: onDone}
	for i := range a.buckets {
		a.buckets[i] = map[uint64]uint64{}
	}
	return a
}

// find locates root's bucket index, or -1. Caller holds mu.
func (a *Acker) find(root uint64) int {
	for i, b := range a.buckets {
		if _, ok := b[root]; ok {
			return i
		}
	}
	return -1
}

// Anchor registers tuple keys created in root's tree: the spout's initial
// emission or a bolt's children. The entry is refreshed into the newest
// bucket (progress resets the timeout clock, as in Heron).
func (a *Acker) Anchor(root uint64, delta uint64) {
	a.xor(root, delta)
}

// Ack processes an acknowledgement delta for root's tree. When the entry
// reaches zero the tree is complete.
func (a *Acker) Ack(root uint64, delta uint64) {
	a.xor(root, delta)
}

func (a *Acker) xor(root uint64, delta uint64) {
	a.mu.Lock()
	cur := uint64(0)
	if i := a.find(root); i >= 0 {
		cur = a.buckets[i][root]
		delete(a.buckets[i], root)
	}
	cur ^= delta
	if cur == 0 {
		a.mu.Unlock()
		if a.onDone != nil {
			a.onDone(root, Completed)
		}
		return
	}
	a.buckets[0][root] = cur
	a.mu.Unlock()
}

// Fail terminates root's tree immediately with a Failed outcome. Unknown
// roots are ignored (the tree may have completed or timed out already).
func (a *Acker) Fail(root uint64) {
	a.mu.Lock()
	i := a.find(root)
	if i >= 0 {
		delete(a.buckets[i], root)
	}
	a.mu.Unlock()
	if i >= 0 && a.onDone != nil {
		a.onDone(root, Failed)
	}
}

// Rotate expires the oldest bucket: every tree still in it times out.
// Callers drive rotation from a timer whose period is
// messageTimeout / (buckets - 1).
func (a *Acker) Rotate() {
	a.mu.Lock()
	oldest := a.buckets[len(a.buckets)-1]
	copy(a.buckets[1:], a.buckets[:len(a.buckets)-1])
	a.buckets[0] = map[uint64]uint64{}
	a.mu.Unlock()
	if a.onDone != nil {
		for root := range oldest {
			a.onDone(root, TimedOut)
		}
	}
}

// Pending returns the number of in-flight trees (test/metrics helper).
func (a *Acker) Pending() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, b := range a.buckets {
		n += len(b)
	}
	return n
}
