package network

import (
	"fmt"
	"sync"

	"heron/internal/encoding/wire"
)

// InprocTransport connects components inside one process through buffered
// channels. Send copies its payload so the cost model of a process
// boundary (serialize, copy, deserialize) is preserved; benchmarks that
// compare codecs and batching remain honest under this transport.
// SendOwned, by contrast, hands the pooled frame buffer itself to the
// receiver — the zero-copy leg the optimized Stream Manager data path
// relies on: the buffer crosses the "boundary" untouched and is recycled
// after the receiving handler returns.
type InprocTransport struct{}

// Name implements Transport.
func (InprocTransport) Name() string { return "inproc" }

// inprocBufferedFrames is the per-connection inbox depth. A full inbox
// blocks the sender, which is how backpressure propagates in-process.
const inprocBufferedFrames = 1024

type inprocFrame struct {
	kind MsgKind
	buf  *wire.Buffer // pooled; recycled after the handler runs
}

type inprocConn struct {
	peer      *inprocConn
	inbox     chan inprocFrame
	closed    chan struct{}
	closeOnce sync.Once
	started   bool
}

func newInprocPair() (*inprocConn, *inprocConn) {
	a := &inprocConn{inbox: make(chan inprocFrame, inprocBufferedFrames), closed: make(chan struct{})}
	b := &inprocConn{inbox: make(chan inprocFrame, inprocBufferedFrames), closed: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

// Send implements Conn. The payload is copied into a pooled buffer and
// handed to the peer's inbox.
func (c *inprocConn) Send(kind MsgKind, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooBig
	}
	buf := wire.GetBuffer()
	buf.B = append(buf.B, payload...)
	return c.deliver(kind, buf)
}

// SendOwned implements Conn: the pooled buffer crosses to the peer
// without a copy and is recycled once the receiving handler returns.
func (c *inprocConn) SendOwned(kind MsgKind, buf *wire.Buffer) error {
	if len(buf.B) > MaxFrameSize {
		wire.PutBuffer(buf)
		return ErrFrameTooBig
	}
	return c.deliver(kind, buf)
}

// Flush implements Conn: inproc delivery is immediate, nothing to flush.
func (c *inprocConn) Flush() error { return nil }

func (c *inprocConn) deliver(kind MsgKind, buf *wire.Buffer) error {
	select {
	case c.peer.inbox <- inprocFrame{kind: kind, buf: buf}:
		return nil
	case <-c.closed:
		wire.PutBuffer(buf)
		return ErrClosed
	case <-c.peer.closed:
		wire.PutBuffer(buf)
		return ErrClosed
	}
}

// Start implements Conn.
func (c *inprocConn) Start(h Handler) {
	c.StartOwned(func(kind MsgKind, buf *wire.Buffer) {
		h(kind, buf.B)
		wire.PutBuffer(buf)
	})
}

// StartOwned implements OwnedStarter: received frames keep their pooled
// buffers, which pass to the handler without a copy.
func (c *inprocConn) StartOwned(h OwnedHandler) {
	if c.started {
		panic("network: Start called twice")
	}
	c.started = true
	go func() {
		for {
			select {
			case f := <-c.inbox:
				h(f.kind, f.buf)
			case <-c.closed:
				return
			}
		}
	}()
}

// Close implements Conn. Closing either end unblocks both.
func (c *inprocConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	c.peer.closeOnce.Do(func() { close(c.peer.closed) })
	return nil
}

type inprocListener struct {
	addr      string
	backlog   chan *inprocConn
	closed    chan struct{}
	closeOnce sync.Once
}

// Accept implements Listener.
func (l *inprocListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.closed:
		return nil, ErrClosed
	}
}

// Addr implements Listener.
func (l *inprocListener) Addr() string { return l.addr }

// Close implements Listener and unregisters the address.
func (l *inprocListener) Close() error {
	l.closeOnce.Do(func() {
		close(l.closed)
		inprocMu.Lock()
		if inprocListeners[l.addr] == l {
			delete(inprocListeners, l.addr)
		}
		inprocMu.Unlock()
	})
	return nil
}

var (
	inprocMu        sync.Mutex
	inprocListeners = map[string]*inprocListener{}
	inprocSeq       int
)

// Listen implements Transport. The empty address or a trailing ":0" style
// name auto-assigns a unique address, mirroring TCP's ephemeral ports.
func (InprocTransport) Listen(addr string) (Listener, error) {
	inprocMu.Lock()
	defer inprocMu.Unlock()
	if addr == "" || addr == "auto" {
		inprocSeq++
		addr = fmt.Sprintf("inproc-%d", inprocSeq)
	}
	if _, ok := inprocListeners[addr]; ok {
		return nil, fmt.Errorf("network: inproc address %q already bound", addr)
	}
	l := &inprocListener{addr: addr, backlog: make(chan *inprocConn, 128), closed: make(chan struct{})}
	inprocListeners[addr] = l
	return l, nil
}

// Dial implements Transport.
func (InprocTransport) Dial(addr string) (Conn, error) {
	inprocMu.Lock()
	l, ok := inprocListeners[addr]
	inprocMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("network: no inproc listener at %q", addr)
	}
	local, remote := newInprocPair()
	select {
	case l.backlog <- remote:
		return local, nil
	case <-l.closed:
		return nil, ErrClosed
	}
}
