package network

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func transports(t *testing.T) map[string]Transport {
	t.Helper()
	return map[string]Transport{"inproc": InprocTransport{}, "tcp": TCPTransport{}, "ring": RingTransport{}}
}

// echoPair returns a connected (client, server) pair over tr.
func connPair(t *testing.T, tr Transport) (Conn, Conn, func()) {
	t.Helper()
	l, err := tr.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	var server Conn
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		server = c
	}()
	client, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	cleanup := func() {
		client.Close()
		if server != nil {
			server.Close()
		}
		l.Close()
	}
	return client, server, cleanup
}

func TestSendReceiveAllKinds(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			client, server, cleanup := connPair(t, tr)
			defer cleanup()

			type rec struct {
				kind MsgKind
				data []byte
			}
			got := make(chan rec, 8)
			server.Start(func(kind MsgKind, payload []byte) {
				// Payload is only valid during the call: copy.
				got <- rec{kind, append([]byte(nil), payload...)}
			})
			msgs := []rec{
				{MsgData, []byte("tuples")},
				{MsgAck, []byte("acks")},
				{MsgControl, []byte(`{"op":"register"}`)},
				{MsgData, nil}, // empty payload is legal
			}
			for _, m := range msgs {
				if err := client.Send(m.kind, m.data); err != nil {
					t.Fatal(err)
				}
			}
			for _, want := range msgs {
				select {
				case r := <-got:
					if r.kind != want.kind || !bytes.Equal(r.data, want.data) {
						t.Errorf("got %v %q, want %v %q", r.kind, r.data, want.kind, want.data)
					}
				case <-time.After(2 * time.Second):
					t.Fatal("timeout waiting for frame")
				}
			}
		})
	}
}

func TestBidirectional(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			client, server, cleanup := connPair(t, tr)
			defer cleanup()
			fromServer := make(chan []byte, 1)
			fromClient := make(chan []byte, 1)
			client.Start(func(_ MsgKind, p []byte) { fromServer <- append([]byte(nil), p...) })
			server.Start(func(_ MsgKind, p []byte) { fromClient <- append([]byte(nil), p...) })
			if err := client.Send(MsgData, []byte("ping")); err != nil {
				t.Fatal(err)
			}
			if err := server.Send(MsgData, []byte("pong")); err != nil {
				t.Fatal(err)
			}
			if got := <-fromClient; string(got) != "ping" {
				t.Errorf("server got %q", got)
			}
			if got := <-fromServer; string(got) != "pong" {
				t.Errorf("client got %q", got)
			}
		})
	}
}

func TestSendAfterClose(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			client, server, cleanup := connPair(t, tr)
			defer cleanup()
			server.Start(func(MsgKind, []byte) {})
			client.Close()
			// TCP may need a beat for the close to surface; retry briefly.
			deadline := time.Now().Add(2 * time.Second)
			for {
				err := client.Send(MsgData, []byte("x"))
				if err != nil {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("Send succeeded after Close")
				}
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}

func TestManyFramesOrdered(t *testing.T) {
	const n = 5000
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			client, server, cleanup := connPair(t, tr)
			defer cleanup()
			var mu sync.Mutex
			var got []int
			done := make(chan struct{})
			server.Start(func(_ MsgKind, p []byte) {
				mu.Lock()
				got = append(got, int(p[0])<<16|int(p[1])<<8|int(p[2]))
				if len(got) == n {
					close(done)
				}
				mu.Unlock()
			})
			for i := 0; i < n; i++ {
				p := []byte{byte(i >> 16), byte(i >> 8), byte(i)}
				if err := client.Send(MsgData, p); err != nil {
					t.Fatal(err)
				}
			}
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("timeout")
			}
			for i, v := range got {
				if v != i {
					t.Fatalf("frame %d out of order: %d", i, v)
				}
			}
		})
	}
}

func TestFrameTooBig(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			client, _, cleanup := connPair(t, tr)
			defer cleanup()
			huge := make([]byte, MaxFrameSize+1)
			if err := client.Send(MsgData, huge); err != ErrFrameTooBig {
				t.Errorf("want ErrFrameTooBig, got %v", err)
			}
		})
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			l, err := tr.Listen("")
			if err != nil {
				t.Fatal(err)
			}
			errc := make(chan error, 1)
			go func() {
				_, err := l.Accept()
				errc <- err
			}()
			time.Sleep(20 * time.Millisecond)
			l.Close()
			select {
			case err := <-errc:
				if err != ErrClosed {
					t.Errorf("want ErrClosed, got %v", err)
				}
			case <-time.After(2 * time.Second):
				t.Fatal("Accept did not unblock")
			}
		})
	}
}

func TestInprocAddressReuseAfterClose(t *testing.T) {
	tr := InprocTransport{}
	l, err := tr.Listen("reuse-test")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Listen("reuse-test"); err == nil {
		t.Fatal("double bind should fail")
	}
	l.Close()
	l2, err := tr.Listen("reuse-test")
	if err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	l2.Close()
}

func TestInprocDialUnknown(t *testing.T) {
	if _, err := (InprocTransport{}).Dial("no-such-endpoint"); err == nil {
		t.Fatal("want error")
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"", "inproc", "tcp", "ring"} {
		tr, err := ByName(n)
		if err != nil || tr == nil {
			t.Errorf("ByName(%q): %v", n, err)
		}
	}
	if _, err := ByName("rdma"); err == nil {
		t.Error("want error for unknown transport")
	}
}

func TestConcurrentSenders(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			client, server, cleanup := connPair(t, tr)
			defer cleanup()
			const senders, per = 8, 500
			var count atomic.Int64
			done := make(chan struct{})
			server.Start(func(_ MsgKind, p []byte) {
				if count.Add(1) == senders*per {
					close(done)
				}
			})
			var wg sync.WaitGroup
			for s := 0; s < senders; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					payload := []byte(fmt.Sprintf("sender-%d", s))
					for i := 0; i < per; i++ {
						if err := client.Send(MsgData, payload); err != nil {
							t.Error(err)
							return
						}
					}
				}(s)
			}
			wg.Wait()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatalf("got %d of %d frames", count.Load(), senders*per)
			}
		})
	}
}

func BenchmarkSendRecv(b *testing.B) {
	for name, tr := range map[string]Transport{"inproc": InprocTransport{}, "tcp": TCPTransport{}} {
		b.Run(name, func(b *testing.B) {
			l, err := tr.Listen("")
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			acceptErr := make(chan error, 1)
			var server Conn
			go func() {
				c, err := l.Accept()
				server = c
				acceptErr <- err
			}()
			client, err := tr.Dial(l.Addr())
			if err != nil {
				b.Fatal(err)
			}
			if err := <-acceptErr; err != nil {
				b.Fatal(err)
			}
			defer client.Close()
			defer server.Close()
			var seen atomic.Int64
			server.Start(func(MsgKind, []byte) { seen.Add(1) })
			payload := bytes.Repeat([]byte{0xaa}, 256)
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := client.Send(MsgData, payload); err != nil {
					b.Fatal(err)
				}
			}
			for int(seen.Load()) < b.N {
				time.Sleep(time.Millisecond)
			}
		})
	}
}
