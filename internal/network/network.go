// Package network is Heron's IPC kernel: the one non-replaceable layer of
// the architecture (the paper's "basic inter/intra process communication
// mechanisms" that every other module plugs into).
//
// It exposes a minimal connection abstraction — framed, kind-tagged byte
// messages — behind a Transport interface with three implementations:
//
//   - "tcp": real sockets with length-prefixed framing, used when
//     containers are separate processes or for realism in tests.
//   - "inproc": channel-backed connections for single-process deployments
//     and benchmarks. Payloads are still copied on Send, so every message
//     pays the serialize-copy-deserialize cost of a process boundary; only
//     the syscall is elided.
//   - "ring": a lock-free shared-memory ring of owned wire.Buffers for
//     same-host container pairs. SendOwned moves the pooled frame buffer
//     itself through a bounded Vyukov queue — no channel, no syscall, no
//     copy — so co-located containers bypass the TCP loopback entirely.
//
// Handlers receive payload slices that are valid only for the duration of
// the call; receivers must copy anything they retain. This allows both
// transports to recycle receive buffers through the wire package's pools.
//
// Conn carries two send disciplines. Send copies and flushes: the frame
// departs before the call returns, which is right for control traffic and
// for callers that reuse their scratch buffer. SendOwned transfers
// ownership of a pooled wire.Buffer to the connection and may coalesce
// the frame with neighbours until Flush — the Stream Manager's outbox
// drains N frames through SendOwned and ends the drain with a single
// Flush, so a batch crosses TCP as one buffered write + one flush instead
// of N per-frame flushes, and crosses inproc with no copy at all.
package network

import (
	"encoding/binary"
	"errors"
	"fmt"

	"heron/internal/encoding/wire"
)

// MsgKind tags the content of a frame so a single connection can carry
// data tuples, acks and control messages.
type MsgKind uint8

// Frame kinds.
const (
	MsgData    MsgKind = 1 // batch of encoded data tuples
	MsgAck     MsgKind = 2 // batch of encoded ack/fail control tuples
	MsgControl MsgKind = 3 // control plane (registration, plans, metrics)
	MsgMarker  MsgKind = 4 // checkpoint epoch marker (barrier alignment)
	// MsgCommitted notifies an instance that a checkpoint epoch globally
	// committed (the second phase of transactional sources/sinks). It uses
	// the marker payload encoding and, like markers, must not overtake data
	// already batched for the same destination.
	MsgCommitted MsgKind = 5
)

// MaxFrameSize bounds a single frame; larger sends fail fast instead of
// letting a corrupted length header allocate unbounded memory on receive.
const MaxFrameSize = 16 << 20

// Errors shared by transports.
var (
	ErrClosed      = errors.New("network: connection closed")
	ErrFrameTooBig = fmt.Errorf("network: frame exceeds %d bytes", MaxFrameSize)
)

// Handler consumes one received frame. The payload slice is reused after
// the handler returns.
type Handler func(kind MsgKind, payload []byte)

// OwnedHandler consumes one received frame and takes ownership of its
// pooled buffer: the handler (or whatever it hands the buffer to) must
// eventually recycle it with wire.PutBuffer. This is the receive-side
// mirror of SendOwned — the sharded Stream Manager uses it to move an
// inbound frame from the transport straight into a shard's dispatch ring
// without a copy.
type OwnedHandler func(kind MsgKind, buf *wire.Buffer)

// OwnedStarter is implemented by connections that can deliver received
// frames with ownership transfer. All built-in transports implement it;
// callers that need it assert for the interface and fall back to Start
// plus a copy when absent.
type OwnedStarter interface {
	// StartOwned begins delivering received frames to h from a dedicated
	// goroutine, transferring buffer ownership to the handler. Like
	// Start, it must be called exactly once (and not combined with
	// Start).
	StartOwned(h OwnedHandler)
}

// Conn is a bidirectional, framed message connection.
type Conn interface {
	// Send enqueues one frame. It copies payload before returning and
	// blocks when the peer is slower than the sender — this blocking is
	// the engine's backpressure primitive. Returns ErrClosed after Close.
	Send(kind MsgKind, payload []byte) error
	// SendOwned transfers ownership of buf (a pooled frame buffer) to the
	// connection: the buffer is recycled via wire.PutBuffer once the frame
	// has been handed off — after the buffered write on TCP, after the
	// receiving handler returns on inproc. The caller must not touch buf
	// after the call, even on error. Unlike Send, the frame may sit in a
	// write buffer until Flush; callers streaming a batch end it with one
	// Flush. This is the zero-copy leg of the data path.
	SendOwned(kind MsgKind, buf *wire.Buffer) error
	// Flush pushes any frames coalesced by SendOwned onto the wire. It is
	// a no-op on transports that deliver immediately (inproc).
	Flush() error
	// Start begins delivering received frames to h from a dedicated
	// goroutine. It must be called exactly once.
	Start(h Handler)
	// Close tears the connection down and unblocks pending Sends.
	Close() error
}

// Listener accepts inbound connections.
type Listener interface {
	// Accept blocks for the next connection; it returns ErrClosed once the
	// listener is closed.
	Accept() (Conn, error)
	// Addr returns the bound address in the transport's own format.
	Addr() string
	Close() error
}

// Transport creates listeners and connections for one address family.
type Transport interface {
	Name() string
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
}

// ByName returns the transport registered under name.
func ByName(name string) (Transport, error) {
	switch name {
	case "", "inproc":
		return InprocTransport{}, nil
	case "tcp":
		return TCPTransport{}, nil
	case "ring":
		return RingTransport{}, nil
	default:
		return nil, fmt.Errorf("network: unknown transport %q", name)
	}
}

// frame header: 4-byte big-endian payload length + 1-byte kind.
const headerSize = 5

func putHeader(dst []byte, kind MsgKind, n int) {
	binary.BigEndian.PutUint32(dst, uint32(n))
	dst[4] = byte(kind)
}

func parseHeader(src []byte) (MsgKind, int, error) {
	n := int(binary.BigEndian.Uint32(src))
	if n > MaxFrameSize {
		return 0, 0, ErrFrameTooBig
	}
	return MsgKind(src[4]), n, nil
}
