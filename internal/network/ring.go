package network

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"heron/internal/encoding/wire"
)

// FrameRing is a bounded lock-free ring of owned frames (kind + pooled
// wire.Buffer), the shared-memory primitive behind both the "ring"
// transport and the sharded Stream Manager's per-shard dispatch inboxes.
//
// The implementation is Vyukov's bounded MPMC queue, so any number of
// producers may Enqueue concurrently; the consumer side is used
// single-consumer (SPSC in steady state). Enqueue transfers buffer
// ownership into the ring; TryDequeue transfers it out to the caller. A
// full ring blocks the producer (spin, then sleep) — that blocking is the
// backpressure primitive, exactly like a full inproc inbox or a slow TCP
// peer.
//
// Each ring can stamp a deterministic 1-in-sampleEvery subset of frames
// with a monotonic enqueue time (NowNanos); the consumer reads the stamp
// from TryDequeue and observes NowNanos()-stamp as the queue-inclusive
// route latency. Sampling keeps the clock call off seven of every eight
// frames.
type FrameRing struct {
	mask  uint64
	cells []frameCell

	enqueuePos atomic.Uint64
	_          [56]byte // keep producer and consumer positions off one cache line
	dequeuePos atomic.Uint64
	_          [56]byte

	sampleEvery uint64 // 0 disables stamping
	sampleCtr   atomic.Uint64

	closed   atomic.Bool
	sleeping atomic.Bool
	notify   chan struct{}
}

type frameCell struct {
	seq   atomic.Uint64
	kind  MsgKind
	stamp int64 // NowNanos at enqueue; 0 when unsampled
	buf   *wire.Buffer
}

// ringEpoch anchors NowNanos; time.Since reads the monotonic clock.
var ringEpoch = time.Now()

// NowNanos is the monotonic nanosecond clock FrameRing stamps frames
// with. Consumers subtract a frame's stamp from NowNanos() to get its
// time in flight.
func NowNanos() int64 { return int64(time.Since(ringEpoch)) }

// NewFrameRing creates a ring holding up to capacity frames (rounded up
// to a power of two, minimum 2). sampleEvery > 0 stamps every
// sampleEvery-th enqueued frame with its enqueue time; 0 disables
// stamping.
func NewFrameRing(capacity, sampleEvery int) *FrameRing {
	if capacity < 2 {
		capacity = 2
	}
	capacity = 1 << bits.Len64(uint64(capacity-1)) // next power of two
	r := &FrameRing{
		mask:        uint64(capacity - 1),
		cells:       make([]frameCell, capacity),
		sampleEvery: uint64(sampleEvery),
		notify:      make(chan struct{}, 1),
	}
	for i := range r.cells {
		r.cells[i].seq.Store(uint64(i))
	}
	return r
}

// Enqueue moves one owned frame into the ring, blocking while the ring is
// full. After Close it recycles buf and returns ErrClosed. The caller
// must not touch buf after the call, even on error.
func (r *FrameRing) Enqueue(kind MsgKind, buf *wire.Buffer) error {
	var idle int
	for {
		if r.closed.Load() {
			wire.PutBuffer(buf)
			return ErrClosed
		}
		pos := r.enqueuePos.Load()
		cell := &r.cells[pos&r.mask]
		seq := cell.seq.Load()
		switch diff := int64(seq) - int64(pos); {
		case diff == 0:
			if !r.enqueuePos.CompareAndSwap(pos, pos+1) {
				continue // lost the slot to another producer
			}
			cell.kind, cell.buf, cell.stamp = kind, buf, 0
			if r.sampleEvery > 0 && r.sampleCtr.Add(1)%r.sampleEvery == 0 {
				cell.stamp = NowNanos()
			}
			cell.seq.Store(pos + 1) // publish to the consumer
			r.wake()
			return nil
		case diff < 0:
			// Ring full: the consumer hasn't freed this cell yet. Spin
			// briefly, then sleep — producer blocking is backpressure.
			if idle++; idle < 64 {
				runtime.Gosched()
			} else {
				time.Sleep(20 * time.Microsecond)
			}
		default:
			// Another producer claimed pos but hasn't published; retry.
			runtime.Gosched()
		}
	}
}

// TryDequeue removes the oldest frame, transferring buffer ownership to
// the caller. stamp is the frame's enqueue time (0 when unsampled). Only
// one goroutine may consume.
func (r *FrameRing) TryDequeue() (kind MsgKind, stamp int64, buf *wire.Buffer, ok bool) {
	pos := r.dequeuePos.Load()
	cell := &r.cells[pos&r.mask]
	if int64(cell.seq.Load())-int64(pos+1) != 0 {
		return 0, 0, nil, false
	}
	kind, stamp, buf = cell.kind, cell.stamp, cell.buf
	cell.buf = nil
	cell.seq.Store(pos + r.mask + 1) // release the cell to producers
	r.dequeuePos.Store(pos + 1)
	return kind, stamp, buf, true
}

// Await parks the consumer until a frame may be available, the ring is
// closed, or timeout elapses. It returns true when a frame is ready.
func (r *FrameRing) Await(timeout time.Duration) bool {
	if r.ready() {
		return true
	}
	r.sleeping.Store(true)
	// Recheck after announcing sleep so a concurrent Enqueue either sees
	// sleeping=true and notifies, or its frame is visible here.
	if r.ready() || r.closed.Load() {
		r.sleeping.Store(false)
		return r.ready()
	}
	t := time.NewTimer(timeout)
	select {
	case <-r.notify:
	case <-t.C:
	}
	t.Stop()
	r.sleeping.Store(false)
	return r.ready()
}

func (r *FrameRing) ready() bool {
	pos := r.dequeuePos.Load()
	return int64(r.cells[pos&r.mask].seq.Load())-int64(pos+1) == 0
}

func (r *FrameRing) wake() {
	if r.sleeping.Load() {
		select {
		case r.notify <- struct{}{}:
		default:
		}
	}
}

// Closed reports whether Close has been called.
func (r *FrameRing) Closed() bool { return r.closed.Load() }

// Close marks the ring closed and wakes the consumer. Frames already in
// the ring remain dequeueable; the consumer finishes with Drain. Safe to
// call more than once.
func (r *FrameRing) Close() {
	r.closed.Store(true)
	select {
	case r.notify <- struct{}{}:
	default:
	}
}

// Drain recycles every frame still in the ring, returning the count. The
// consumer calls it after Close; a produce racing the closed check can at
// worst strand a buffer for the GC (a pool miss, not a leak).
func (r *FrameRing) Drain() int {
	n := 0
	for {
		_, _, buf, ok := r.TryDequeue()
		if !ok {
			return n
		}
		wire.PutBuffer(buf)
		n++
	}
}

// RingTransport connects same-host container pairs through a pair of
// FrameRings — one per direction — so co-located containers exchange
// owned pooled buffers with no channel, no syscall and no copy. Like
// inproc it resolves addresses through an in-process registry; unlike
// inproc, SendOwned is a lock-free ring slot claim and the receive path
// hands the pooled buffer itself to OwnedHandler consumers.
type RingTransport struct{}

// Name implements Transport.
func (RingTransport) Name() string { return "ring" }

// ringFrames is the per-direction ring depth; a full ring blocks the
// sender, which is how backpressure propagates between co-located
// containers.
const ringFrames = 1024

type ringConn struct {
	send      *FrameRing
	recv      *FrameRing
	started   bool
	closeOnce sync.Once
}

func newRingPair() (*ringConn, *ringConn) {
	ab := NewFrameRing(ringFrames, 0)
	ba := NewFrameRing(ringFrames, 0)
	return &ringConn{send: ab, recv: ba}, &ringConn{send: ba, recv: ab}
}

// Send implements Conn: the payload is copied into a pooled buffer which
// then crosses the ring owned.
func (c *ringConn) Send(kind MsgKind, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooBig
	}
	buf := wire.GetBuffer()
	buf.B = append(buf.B, payload...)
	return c.send.Enqueue(kind, buf)
}

// SendOwned implements Conn: the pooled buffer crosses to the peer with
// no copy — the zero-copy leg for same-host pairs.
func (c *ringConn) SendOwned(kind MsgKind, buf *wire.Buffer) error {
	if len(buf.B) > MaxFrameSize {
		wire.PutBuffer(buf)
		return ErrFrameTooBig
	}
	return c.send.Enqueue(kind, buf)
}

// Flush implements Conn: ring delivery is immediate.
func (c *ringConn) Flush() error { return nil }

// Start implements Conn.
func (c *ringConn) Start(h Handler) {
	c.StartOwned(func(kind MsgKind, buf *wire.Buffer) {
		h(kind, buf.B)
		wire.PutBuffer(buf)
	})
}

// ringPark is how long the consumer sleeps waiting for frames before
// rechecking the closed flag.
const ringPark = time.Millisecond

// StartOwned implements OwnedStarter.
func (c *ringConn) StartOwned(h OwnedHandler) {
	if c.started {
		panic("network: Start called twice")
	}
	c.started = true
	go func() {
		for {
			kind, _, buf, ok := c.recv.TryDequeue()
			if ok {
				h(kind, buf)
				continue
			}
			if c.recv.Closed() {
				c.recv.Drain()
				return
			}
			c.recv.Await(ringPark)
		}
	}()
}

// Close implements Conn: closing either end closes both directions,
// unblocking pending sends on each side.
func (c *ringConn) Close() error {
	c.closeOnce.Do(func() {
		c.send.Close()
		c.recv.Close()
	})
	return nil
}

type ringListener struct {
	addr      string
	backlog   chan *ringConn
	closed    chan struct{}
	closeOnce sync.Once
}

// Accept implements Listener.
func (l *ringListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.closed:
		return nil, ErrClosed
	}
}

// Addr implements Listener.
func (l *ringListener) Addr() string { return l.addr }

// Close implements Listener and unregisters the address.
func (l *ringListener) Close() error {
	l.closeOnce.Do(func() {
		close(l.closed)
		ringMu.Lock()
		if ringListeners[l.addr] == l {
			delete(ringListeners, l.addr)
		}
		ringMu.Unlock()
	})
	return nil
}

var (
	ringMu        sync.Mutex
	ringListeners = map[string]*ringListener{}
	ringSeq       int
)

// Listen implements Transport. The empty address or "auto" auto-assigns a
// unique address, mirroring TCP's ephemeral ports.
func (RingTransport) Listen(addr string) (Listener, error) {
	ringMu.Lock()
	defer ringMu.Unlock()
	if addr == "" || addr == "auto" {
		ringSeq++
		addr = fmt.Sprintf("ring-%d", ringSeq)
	}
	if _, ok := ringListeners[addr]; ok {
		return nil, fmt.Errorf("network: ring address %q already bound", addr)
	}
	l := &ringListener{addr: addr, backlog: make(chan *ringConn, 128), closed: make(chan struct{})}
	ringListeners[addr] = l
	return l, nil
}

// Dial implements Transport.
func (RingTransport) Dial(addr string) (Conn, error) {
	ringMu.Lock()
	l, ok := ringListeners[addr]
	ringMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("network: no ring listener at %q", addr)
	}
	local, remote := newRingPair()
	select {
	case l.backlog <- remote:
		return local, nil
	case <-l.closed:
		return nil, ErrClosed
	}
}
