package network

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"

	"heron/internal/encoding/wire"
)

// TCPTransport carries frames over loopback or real network sockets. Each
// frame is a 4-byte big-endian length, a 1-byte kind, then the payload.
type TCPTransport struct{}

// Name implements Transport.
func (TCPTransport) Name() string { return "tcp" }

// tcpWriterSize is the bufio coalescing window. Frames whose header +
// payload exceed it bypass the copy into bufio entirely and go out as one
// vectored write (net.Buffers → writev on *net.TCPConn).
const tcpWriterSize = 64 << 10

type tcpConn struct {
	c  net.Conn
	mu sync.Mutex // serializes writers
	w  *bufio.Writer

	closeOnce sync.Once
	closeErr  error
	hdr       [headerSize]byte
	vec       net.Buffers // scratch for the vectored large-frame path
}

// Send implements Conn. Frames from concurrent senders are serialized by
// a mutex; the frame is flushed before returning so it departs now.
// Batch-aware callers use SendOwned + Flush instead.
func (t *tcpConn) Send(kind MsgKind, payload []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.writeFrame(kind, payload); err != nil {
		return err
	}
	return t.mapErr(t.w.Flush())
}

// SendOwned implements Conn: the frame is written into the outgoing
// buffer without a flush, and buf is recycled immediately after (a TCP
// write never retains the payload). An outbox draining N frames performs
// N buffered writes and one Flush.
func (t *tcpConn) SendOwned(kind MsgKind, buf *wire.Buffer) error {
	t.mu.Lock()
	err := t.writeFrame(kind, buf.B)
	t.mu.Unlock()
	wire.PutBuffer(buf)
	return err
}

// Flush implements Conn.
func (t *tcpConn) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.mapErr(t.w.Flush())
}

// writeFrame stages one frame; the caller holds t.mu and decides when to
// flush. Frames larger than the bufio window are sent as a single
// vectored write (header + payload, writev on TCP) instead of being
// chunk-copied through the buffer.
func (t *tcpConn) writeFrame(kind MsgKind, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooBig
	}
	putHeader(t.hdr[:], kind, len(payload))
	if headerSize+len(payload) > tcpWriterSize {
		if err := t.w.Flush(); err != nil {
			return t.mapErr(err)
		}
		t.vec = append(t.vec[:0], t.hdr[:], payload)
		if _, err := t.vec.WriteTo(t.c); err != nil {
			return t.mapErr(err)
		}
		return nil
	}
	if _, err := t.w.Write(t.hdr[:]); err != nil {
		return t.mapErr(err)
	}
	if _, err := t.w.Write(payload); err != nil {
		return t.mapErr(err)
	}
	return nil
}

func (t *tcpConn) mapErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) {
		return ErrClosed
	}
	return err
}

// Start implements Conn.
func (t *tcpConn) Start(h Handler) {
	t.StartOwned(func(kind MsgKind, buf *wire.Buffer) {
		h(kind, buf.B)
		wire.PutBuffer(buf)
	})
}

// StartOwned implements OwnedStarter: each frame is read into a fresh
// pooled buffer whose ownership passes to the handler.
func (t *tcpConn) StartOwned(h OwnedHandler) {
	go func() {
		r := bufio.NewReaderSize(t.c, 64<<10)
		var hdr [headerSize]byte
		for {
			if _, err := io.ReadFull(r, hdr[:]); err != nil {
				return
			}
			kind, n, err := parseHeader(hdr[:])
			if err != nil {
				_ = t.Close()
				return
			}
			buf := wire.GetBuffer()
			if _, err := io.ReadFull(r, buf.Sized(n)); err != nil {
				wire.PutBuffer(buf)
				return
			}
			h(kind, buf)
		}
	}()
}

// Close implements Conn.
func (t *tcpConn) Close() error {
	t.closeOnce.Do(func() { t.closeErr = t.c.Close() })
	return t.closeErr
}

type tcpListener struct {
	l net.Listener
}

// Accept implements Listener.
func (l tcpListener) Accept() (Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, err
	}
	return wrapTCP(c), nil
}

// Addr implements Listener.
func (l tcpListener) Addr() string { return l.l.Addr().String() }

// Close implements Listener.
func (l tcpListener) Close() error { return l.l.Close() }

func wrapTCP(c net.Conn) *tcpConn {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true) // latency matters more than tinygram avoidance
	}
	return &tcpConn{c: c, w: bufio.NewWriterSize(c, tcpWriterSize)}
}

// Listen implements Transport. Use "127.0.0.1:0" for an ephemeral port.
func (TCPTransport) Listen(addr string) (Listener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return tcpListener{l: l}, nil
}

// Dial implements Transport.
func (TCPTransport) Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return wrapTCP(c), nil
}
