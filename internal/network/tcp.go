package network

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"

	"heron/internal/encoding/wire"
)

// TCPTransport carries frames over loopback or real network sockets. Each
// frame is a 4-byte big-endian length, a 1-byte kind, then the payload.
type TCPTransport struct{}

// Name implements Transport.
func (TCPTransport) Name() string { return "tcp" }

type tcpConn struct {
	c  net.Conn
	mu sync.Mutex // serializes writers
	w  *bufio.Writer

	closeOnce sync.Once
	closeErr  error
	hdr       [headerSize]byte
}

// Send implements Conn. Frames from concurrent senders are serialized by
// a mutex; the bufio layer coalesces small frames into fewer syscalls.
func (t *tcpConn) Send(kind MsgKind, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooBig
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	putHeader(t.hdr[:], kind, len(payload))
	if _, err := t.w.Write(t.hdr[:]); err != nil {
		return t.mapErr(err)
	}
	if _, err := t.w.Write(payload); err != nil {
		return t.mapErr(err)
	}
	// Flush per Send: batching happens above this layer (the Stream
	// Manager's tuple cache), so a frame on the wire should depart now.
	if err := t.w.Flush(); err != nil {
		return t.mapErr(err)
	}
	return nil
}

func (t *tcpConn) mapErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) {
		return ErrClosed
	}
	return err
}

// Start implements Conn.
func (t *tcpConn) Start(h Handler) {
	go func() {
		r := bufio.NewReaderSize(t.c, 64<<10)
		var hdr [headerSize]byte
		for {
			if _, err := io.ReadFull(r, hdr[:]); err != nil {
				return
			}
			kind, n, err := parseHeader(hdr[:])
			if err != nil {
				_ = t.Close()
				return
			}
			buf := wire.GetSlice(n)
			if _, err := io.ReadFull(r, buf); err != nil {
				wire.PutSlice(buf)
				return
			}
			h(kind, buf)
			wire.PutSlice(buf)
		}
	}()
}

// Close implements Conn.
func (t *tcpConn) Close() error {
	t.closeOnce.Do(func() { t.closeErr = t.c.Close() })
	return t.closeErr
}

type tcpListener struct {
	l net.Listener
}

// Accept implements Listener.
func (l tcpListener) Accept() (Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, err
	}
	return wrapTCP(c), nil
}

// Addr implements Listener.
func (l tcpListener) Addr() string { return l.l.Addr().String() }

// Close implements Listener.
func (l tcpListener) Close() error { return l.l.Close() }

func wrapTCP(c net.Conn) *tcpConn {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true) // latency matters more than tinygram avoidance
	}
	return &tcpConn{c: c, w: bufio.NewWriterSize(c, 64<<10)}
}

// Listen implements Transport. Use "127.0.0.1:0" for an ephemeral port.
func (TCPTransport) Listen(addr string) (Listener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return tcpListener{l: l}, nil
}

// Dial implements Transport.
func (TCPTransport) Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return wrapTCP(c), nil
}
