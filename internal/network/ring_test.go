package network

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"heron/internal/encoding/wire"
)

func ringFrame(i int) *wire.Buffer {
	buf := wire.GetBuffer()
	buf.B = append(buf.B, []byte(fmt.Sprintf("frame-%06d", i))...)
	return buf
}

func TestFrameRingFIFO(t *testing.T) {
	r := NewFrameRing(64, 0)
	const n = 50
	for i := 0; i < n; i++ {
		if err := r.Enqueue(MsgData, ringFrame(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		kind, stamp, buf, ok := r.TryDequeue()
		if !ok {
			t.Fatalf("frame %d missing", i)
		}
		if kind != MsgData || stamp != 0 {
			t.Fatalf("frame %d: kind=%v stamp=%d", i, kind, stamp)
		}
		if want := fmt.Sprintf("frame-%06d", i); string(buf.B) != want {
			t.Fatalf("frame %d out of order: %q", i, buf.B)
		}
		wire.PutBuffer(buf)
	}
	if _, _, _, ok := r.TryDequeue(); ok {
		t.Fatal("dequeue from empty ring succeeded")
	}
}

func TestFrameRingCapacityRounding(t *testing.T) {
	// Capacity rounds up to a power of two with a minimum of 2; the ring
	// must hold exactly that many frames before a producer would block.
	r := NewFrameRing(3, 0)
	for i := 0; i < 4; i++ {
		done := make(chan error, 1)
		go func(i int) { done <- r.Enqueue(MsgData, ringFrame(i)) }(i)
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(time.Second):
			t.Fatalf("enqueue %d blocked below capacity", i)
		}
	}
	r.Close()
	if got := r.Drain(); got != 4 {
		t.Fatalf("drained %d frames, want 4", got)
	}
}

func TestFrameRingFullBlocksUntilDequeue(t *testing.T) {
	r := NewFrameRing(2, 0)
	for i := 0; i < 2; i++ {
		if err := r.Enqueue(MsgData, ringFrame(i)); err != nil {
			t.Fatal(err)
		}
	}
	unblocked := make(chan error, 1)
	go func() { unblocked <- r.Enqueue(MsgData, ringFrame(2)) }()
	select {
	case <-unblocked:
		t.Fatal("enqueue into a full ring did not block")
	case <-time.After(50 * time.Millisecond):
	}
	_, _, buf, ok := r.TryDequeue()
	if !ok {
		t.Fatal("dequeue failed")
	}
	wire.PutBuffer(buf)
	select {
	case err := <-unblocked:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("producer still blocked after consumer freed a slot")
	}
	r.Close()
	r.Drain()
}

func TestFrameRingClose(t *testing.T) {
	r := NewFrameRing(8, 0)
	for i := 0; i < 3; i++ {
		if err := r.Enqueue(MsgData, ringFrame(i)); err != nil {
			t.Fatal(err)
		}
	}
	r.Close()
	if !r.Closed() {
		t.Fatal("Closed() false after Close")
	}
	if err := r.Enqueue(MsgData, ringFrame(9)); err != ErrClosed {
		t.Fatalf("enqueue after close: %v, want ErrClosed", err)
	}
	// Frames enqueued before Close stay dequeueable; Drain recycles them.
	if got := r.Drain(); got != 3 {
		t.Fatalf("drained %d frames, want 3", got)
	}
	r.Close() // idempotent
}

func TestFrameRingAwait(t *testing.T) {
	r := NewFrameRing(8, 0)
	start := time.Now()
	if r.Await(30 * time.Millisecond) {
		t.Fatal("Await reported ready on an empty ring")
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("Await returned before the timeout")
	}
	// A frame arriving while the consumer is parked must wake it promptly.
	go func() {
		time.Sleep(20 * time.Millisecond)
		r.Enqueue(MsgData, ringFrame(0))
	}()
	if !r.Await(5 * time.Second) {
		t.Fatal("Await missed the wakeup")
	}
	_, _, buf, ok := r.TryDequeue()
	if !ok {
		t.Fatal("frame not dequeueable after Await")
	}
	wire.PutBuffer(buf)
}

func TestFrameRingSampling(t *testing.T) {
	r := NewFrameRing(64, 4)
	const n = 32
	for i := 0; i < n; i++ {
		if err := r.Enqueue(MsgData, ringFrame(i)); err != nil {
			t.Fatal(err)
		}
	}
	stamped := 0
	for i := 0; i < n; i++ {
		_, stamp, buf, ok := r.TryDequeue()
		if !ok {
			t.Fatalf("frame %d missing", i)
		}
		if stamp != 0 {
			stamped++
			if now := NowNanos(); stamp > now {
				t.Fatalf("stamp %d after now %d", stamp, now)
			}
		}
		wire.PutBuffer(buf)
	}
	if want := n / 4; stamped != want {
		t.Fatalf("stamped %d of %d frames, want %d", stamped, n, want)
	}
}

func TestFrameRingConcurrentProducers(t *testing.T) {
	r := NewFrameRing(16, 0) // smaller than the load: producers must block
	const producers, per = 8, 400
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := r.Enqueue(MsgData, ringFrame(p*per+i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	got := 0
	deadline := time.Now().Add(10 * time.Second)
	for got < producers*per {
		_, _, buf, ok := r.TryDequeue()
		if ok {
			wire.PutBuffer(buf)
			got++
			continue
		}
		if time.Now().After(deadline) {
			t.Fatalf("got %d of %d frames", got, producers*per)
		}
		r.Await(time.Millisecond)
	}
	wg.Wait()
}

func TestRingConnSendOwned(t *testing.T) {
	tr := RingTransport{}
	l, err := tr.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		accepted <- c
	}()
	client, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-accepted
	defer server.Close()

	got := make(chan string, 1)
	srv, ok := server.(OwnedStarter)
	if !ok {
		t.Fatal("ring conn does not implement OwnedStarter")
	}
	srv.StartOwned(func(kind MsgKind, buf *wire.Buffer) {
		got <- string(buf.B)
		wire.PutBuffer(buf)
	})
	buf := wire.GetBuffer()
	buf.B = append(buf.B, []byte("owned-frame")...)
	if err := client.(*ringConn).SendOwned(MsgData, buf); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "owned-frame" {
			t.Fatalf("got %q", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("owned frame not delivered")
	}
}
