// Package storm is the comparison baseline of the paper's Section VI-A:
// a faithful miniature of Apache Storm's specialized architecture, running
// the same api.Spout/api.Bolt components as the Heron engine so the two
// systems are compared on identical user code.
//
// The architectural differences the paper attributes Storm's performance
// to are all present:
//
//   - Tasks are packed several-per-executor; an executor is one thread
//     multiplexing all its tasks (no per-task isolation).
//   - Executors share a worker (the "same JVM"); every remote emit funnels
//     through the worker's single transfer queue and transfer thread.
//   - Serialization is per-tuple with the allocation-heavy naive codec;
//     there is no batching, no pooling, no lazy routing.
//   - Acking runs as acker tasks inside the same executors and queues,
//     so ack traffic contends with data traffic.
//
// Intra-worker tuples are passed as objects without serialization, as in
// real Storm — the baseline is not handicapped where Storm is genuinely
// fast.
package storm

import (
	"fmt"
	"sort"

	"heron/internal/core"
)

// ackerComponent is the reserved component name for acker tasks.
const ackerComponent = "__acker"

// taskInfo places one task in the baseline's plan.
type taskInfo struct {
	id        int32
	component string
	index     int32
	kind      core.ComponentKind // acker tasks use KindBolt
	executor  int                // executor index
	worker    int                // worker index
	isAcker   bool
}

// consumerRoute mirrors the Heron router's per-consumer stream routing.
type consumerRoute struct {
	grouping core.Grouping
	fieldIdx []int
	tasks    []int32
}

// streamRoute is one output stream's routing entry.
type streamRoute struct {
	id           int32
	srcComponent string
	stream       string
	consumers    []consumerRoute
}

// plan is the baseline's static schedule: tasks → executors → workers.
type plan struct {
	topo       *core.Topology
	tasks      []taskInfo
	compTasks  map[string][]int32
	streams    []streamRoute
	streamIdx  map[string]map[string]int32 // component → stream → id
	ackerTasks []int32
	executors  [][]int32 // executor → task ids
	numWorkers int
}

// buildPlan schedules a topology onto workers the way Storm's default
// scheduler does: per-component task ranges split into executors of
// tasksPerExecutor, executors dealt round-robin across workers, plus
// ackersPerWorker acker tasks pinned one per executor.
func buildPlan(t *core.Topology, workers, tasksPerExecutor, ackersPerWorker int) (*plan, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if workers < 1 {
		return nil, fmt.Errorf("storm: workers %d < 1", workers)
	}
	if tasksPerExecutor < 1 {
		tasksPerExecutor = 1
	}
	p := &plan{
		topo:       t,
		compTasks:  map[string][]int32{},
		streamIdx:  map[string]map[string]int32{},
		numWorkers: workers,
	}
	var next int32
	for _, spec := range t.Components {
		for i := 0; i < spec.Parallelism; i++ {
			p.tasks = append(p.tasks, taskInfo{
				id: next, component: spec.Name, index: int32(i), kind: spec.Kind,
			})
			p.compTasks[spec.Name] = append(p.compTasks[spec.Name], next)
			next++
		}
	}
	for w := 0; w < workers; w++ {
		for a := 0; a < ackersPerWorker; a++ {
			p.tasks = append(p.tasks, taskInfo{
				id: next, component: ackerComponent, index: int32(w*ackersPerWorker + a),
				kind: core.KindBolt, isAcker: true,
			})
			p.ackerTasks = append(p.ackerTasks, next)
			next++
		}
	}

	// Executors: per component, consecutive tasks share an executor.
	for _, spec := range t.Components {
		tasks := p.compTasks[spec.Name]
		for start := 0; start < len(tasks); start += tasksPerExecutor {
			end := start + tasksPerExecutor
			if end > len(tasks) {
				end = len(tasks)
			}
			p.executors = append(p.executors, append([]int32(nil), tasks[start:end]...))
		}
	}
	// Acker tasks: one single-task executor each.
	for _, at := range p.ackerTasks {
		p.executors = append(p.executors, []int32{at})
	}
	// Deal executors across workers; ackers land on their own worker slot
	// in the same rotation, matching Storm's even spread.
	for e, tasks := range p.executors {
		w := e % workers
		for _, task := range tasks {
			p.tasks[task].executor = e
			p.tasks[task].worker = w
		}
	}

	// Stream table, deterministic like the Heron physical plan.
	for _, spec := range t.Components {
		names := make([]string, 0, len(spec.Outputs))
		for s := range spec.Outputs {
			names = append(names, s)
		}
		sort.Strings(names)
		for _, s := range names {
			id := int32(len(p.streams))
			p.streams = append(p.streams, streamRoute{id: id, srcComponent: spec.Name, stream: s})
			m := p.streamIdx[spec.Name]
			if m == nil {
				m = map[string]int32{}
				p.streamIdx[spec.Name] = m
			}
			m[s] = id
		}
	}
	for _, spec := range t.Components {
		for _, in := range spec.Inputs {
			stream := in.Stream
			if stream == "" {
				stream = core.DefaultStream
			}
			id, ok := p.streamIdx[in.Component][stream]
			if !ok {
				return nil, fmt.Errorf("storm: no stream %s.%s", in.Component, stream)
			}
			p.streams[id].consumers = append(p.streams[id].consumers, consumerRoute{
				grouping: in.Grouping,
				fieldIdx: in.FieldIdx,
				tasks:    p.compTasks[spec.Name],
			})
		}
	}
	return p, nil
}

// streamID resolves a component's output stream.
func (p *plan) streamID(component, stream string) (int32, bool) {
	if stream == "" {
		stream = core.DefaultStream
	}
	id, ok := p.streamIdx[component][stream]
	return id, ok
}

// ackerFor picks the acker task responsible for a root id.
func (p *plan) ackerFor(root uint64) int32 {
	return p.ackerTasks[int(root%uint64(len(p.ackerTasks)))]
}
