package storm

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"heron/api"
	"heron/internal/acker"
	"heron/internal/core"
	"heron/internal/metrics"
	"heron/internal/tuple"
)

// Config tunes the Storm baseline.
type Config struct {
	// Workers is the number of worker processes ("JVMs").
	Workers int
	// TasksPerExecutor packs this many tasks of one component into one
	// executor thread (Storm's default topology config packs > 1).
	TasksPerExecutor int
	// AckersPerWorker adds this many acker tasks per worker (Storm's
	// topology.acker.executors).
	AckersPerWorker int
	AckingEnabled   bool
	MaxSpoutPending int
	MessageTimeout  time.Duration
	// QueueSize bounds executor receive queues and the worker transfer
	// queue (Storm's disruptor ring sizes).
	QueueSize int
}

// NewConfig returns Storm-like defaults.
func NewConfig() *Config {
	return &Config{
		Workers:          4,
		TasksPerExecutor: 2,
		AckersPerWorker:  1,
		MessageTimeout:   30 * time.Second,
		QueueSize:        8192,
	}
}

// item is one in-flight message: a data tuple (as live objects, for
// intra-worker handoff) or an ack control message. meta models the
// TupleImpl/MessageId object graph the JVM engine allocates per tuple —
// source task, timestamps and the anchor map — which is a real cost of
// Storm's data plane that the architectural comparison must keep.
type item struct {
	dest   int32
	stream int32
	values []any
	key    uint64
	roots  []uint64
	meta   *tupleMeta

	isAck bool
	ack   tuple.AckTuple
}

// tupleMeta mirrors org.apache.storm.tuple.TupleImpl bookkeeping: Storm
// materializes per-tuple metadata objects (MessageId with its anchor map,
// creation timestamps for metrics sampling) on every emit.
type tupleMeta struct {
	srcTask   int32
	createdNs int64
	anchors   map[uint64]uint64
}

// remoteMsg is a serialized item bound for another worker.
type remoteMsg struct {
	destWorker int
	payload    []byte // 1-byte marker + naive-encoded tuple
}

const (
	markData = 0
	markAck  = 1
)

// Cluster is one running baseline topology.
type Cluster struct {
	cfg     *Config
	plan    *plan
	spec    *api.Spec
	workers []*worker
	reg     *metrics.Registry

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mEmitted  *metrics.Counter
	mExecuted *metrics.Counter
	mAcked    *metrics.Counter
	mFailed   *metrics.Counter
	mLatency  *metrics.Histogram
}

type worker struct {
	c         *Cluster
	id        int
	executors []*executor
	transferQ chan remoteMsg
	recvQ     chan []byte
}

type executor struct {
	w     *worker
	tasks []*task
	inQ   chan item
	// sendQ is the executor's send queue: every emit from this executor's
	// tasks passes through it before reaching the worker transfer
	// machinery, as in Storm's executor send thread + disruptor queue.
	sendQ  chan item
	byTask map[int32]*task
	spouts bool
}

type task struct {
	e    *executor
	info taskInfo

	spout api.Spout
	bolt  api.Bolt
	rng   *rand.Rand

	// Spout state.
	pending  map[uint64]pendingEmit
	inflight int

	// Acker-task state.
	trees     *acker.Acker
	rootSpout map[uint64]int32
}

type pendingEmit struct {
	msgID  any
	emitNs int64
}

// Run builds and starts the baseline for a topology spec.
func Run(spec *api.Spec, cfg *Config) (*Cluster, error) {
	if spec == nil || spec.Topology == nil {
		return nil, errors.New("storm: nil spec")
	}
	if cfg == nil {
		cfg = NewConfig()
	}
	p, err := buildPlan(spec.Topology, cfg.Workers, cfg.TasksPerExecutor, cfg.AckersPerWorker)
	if err != nil {
		return nil, err
	}
	reg := metrics.NewRegistry()
	c := &Cluster{
		cfg: cfg, plan: p, spec: spec, reg: reg,
		stop:      make(chan struct{}),
		mEmitted:  reg.Counter("storm.emitted", metrics.Tags{}),
		mExecuted: reg.Counter("storm.executed", metrics.Tags{}),
		mAcked:    reg.Counter("storm.acked", metrics.Tags{}),
		mFailed:   reg.Counter("storm.failed", metrics.Tags{}),
		mLatency:  reg.Histogram("storm.complete_latency_ns", metrics.Tags{}),
	}
	qs := cfg.QueueSize
	if qs < 64 {
		qs = 64
	}
	for w := 0; w < cfg.Workers; w++ {
		c.workers = append(c.workers, &worker{
			c: c, id: w,
			transferQ: make(chan remoteMsg, qs),
			recvQ:     make(chan []byte, qs),
		})
	}
	// Build executors and tasks.
	execs := make([]*executor, len(p.executors))
	for e, taskIDs := range p.executors {
		w := c.workers[e%cfg.Workers]
		ex := &executor{w: w, inQ: make(chan item, qs), sendQ: make(chan item, qs), byTask: map[int32]*task{}}
		for _, id := range taskIDs {
			info := p.tasks[id]
			tk := &task{
				e: ex, info: info,
				rng:       rand.New(rand.NewSource(int64(id)*963247 + 17)),
				pending:   map[uint64]pendingEmit{},
				rootSpout: map[uint64]int32{},
			}
			switch {
			case info.isAcker:
				tk.trees = acker.New(acker.DefaultBuckets, func(root uint64, r acker.Result) {
					c.treeDone(tk, root, r)
				})
			case info.kind == core.KindSpout:
				tk.spout = spec.Spouts[info.component]()
				ex.spouts = true
			default:
				tk.bolt = spec.Bolts[info.component]()
			}
			ex.tasks = append(ex.tasks, tk)
			ex.byTask[id] = tk
		}
		execs[e] = ex
		w.executors = append(w.executors, ex)
	}
	// Open user code.
	for _, ex := range execs {
		for _, tk := range ex.tasks {
			switch {
			case tk.spout != nil:
				if err := tk.spout.Open(taskContext{c, tk}, &spoutCollector{c: c, t: tk}); err != nil {
					return nil, fmt.Errorf("storm: open %s[%d]: %w", tk.info.component, tk.info.index, err)
				}
			case tk.bolt != nil:
				if err := tk.bolt.Prepare(taskContext{c, tk}, &boltCollector{c: c, t: tk}); err != nil {
					return nil, fmt.Errorf("storm: prepare %s[%d]: %w", tk.info.component, tk.info.index, err)
				}
			}
		}
	}
	// Start worker threads: transfer + receive per worker, one thread per
	// executor.
	for _, w := range c.workers {
		c.wg.Add(2)
		go w.transferLoop()
		go w.receiveLoop()
		for _, ex := range w.executors {
			c.wg.Add(2)
			go ex.sendLoop()
			if ex.spouts {
				go ex.spoutLoop()
			} else {
				go ex.boltLoop()
			}
		}
	}
	return c, nil
}

// Stop halts every thread and closes user code.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() {
		close(c.stop)
		c.wg.Wait()
		for _, w := range c.workers {
			for _, ex := range w.executors {
				for _, tk := range ex.tasks {
					if tk.spout != nil {
						_ = tk.spout.Close()
					}
					if tk.bolt != nil {
						_ = tk.bolt.Cleanup()
					}
				}
			}
		}
	})
}

// Registry exposes the baseline's metrics.
func (c *Cluster) Registry() *metrics.Registry { return c.reg }

// Counts returns (emitted, executed, acked, failed).
func (c *Cluster) Counts() (int64, int64, int64, int64) {
	return c.mEmitted.Value(), c.mExecuted.Value(), c.mAcked.Value(), c.mFailed.Value()
}

// Latency snapshots the complete-latency histogram.
func (c *Cluster) Latency() metrics.HistogramSnapshot { return c.mLatency.Snapshot() }

// deliver enqueues one emitted item on the executor's send queue; the
// executor send thread routes it from there.
func (c *Cluster) deliver(ex *executor, it item) {
	select {
	case ex.sendQ <- it:
	case <-c.stop:
	}
}

// sendLoop is the executor's send thread.
func (ex *executor) sendLoop() {
	c := ex.w.c
	defer c.wg.Done()
	for {
		select {
		case <-c.stop:
			return
		case it := <-ex.sendQ:
			c.route(ex.w, it)
		}
	}
}

// route moves one item toward its destination: direct object handoff
// within a worker, naive serialization through the shared transfer queue
// across workers.
func (c *Cluster) route(from *worker, it item) {
	destWorker := c.plan.tasks[it.dest].worker
	if destWorker == from.id {
		ex := c.executorOf(it.dest)
		select {
		case ex.inQ <- it:
		case <-c.stop:
		}
		return
	}
	// Remote: per-tuple serialization with the allocation-heavy codec, no
	// batching — Storm's inter-worker path.
	var payload []byte
	if it.isAck {
		payload = append(payload, markAck)
		payload = tuple.EncodeAck(payload, &it.ack)
		// Ack destination is implied by the encoded spout/acker routing;
		// carry dest explicitly in the data-tuple slot instead.
		payload = appendDest(payload, it.dest)
	} else {
		dt := tuple.DataTuple{
			DestTask: it.dest, StreamID: it.stream, Key: it.key,
			Roots: it.roots, Values: it.values,
		}
		payload = append(payload, markData)
		payload = (tuple.NaiveCodec{}).EncodeData(payload, &dt)
	}
	select {
	case from.transferQ <- remoteMsg{destWorker: destWorker, payload: payload}:
	case <-c.stop:
	}
}

// appendDest tacks a fixed-width destination onto an ack payload.
func appendDest(b []byte, dest int32) []byte {
	return append(b, byte(dest), byte(dest>>8), byte(dest>>16), byte(dest>>24))
}

func splitDest(b []byte) ([]byte, int32) {
	n := len(b) - 4
	dest := int32(b[n]) | int32(b[n+1])<<8 | int32(b[n+2])<<16 | int32(b[n+3])<<24
	return b[:n], dest
}

func (c *Cluster) executorOf(task int32) *executor {
	info := c.plan.tasks[task]
	return c.workers[info.worker].executors[c.executorIndexInWorker(info.executor, info.worker)]
}

// executorIndexInWorker maps a global executor index to the worker's
// local slice position (executors were appended in global order).
func (c *Cluster) executorIndexInWorker(globalExec, workerID int) int {
	// Executors e with e % Workers == workerID land on this worker, in
	// increasing order, so the local index is e / Workers.
	_ = workerID
	return globalExec / c.cfg.Workers
}

// transferLoop is the worker's single transfer thread: every remote tuple
// from every executor in the worker funnels through here.
func (w *worker) transferLoop() {
	defer w.c.wg.Done()
	for {
		select {
		case <-w.c.stop:
			return
		case m := <-w.transferQ:
			select {
			case w.c.workers[m.destWorker].recvQ <- m.payload:
			case <-w.c.stop:
				return
			}
		}
	}
}

// receiveLoop is the worker's receive thread: it deserializes inbound
// tuples and dispatches them to executor queues.
func (w *worker) receiveLoop() {
	defer w.c.wg.Done()
	for {
		select {
		case <-w.c.stop:
			return
		case payload := <-w.recvQ:
			if len(payload) == 0 {
				continue
			}
			switch payload[0] {
			case markData:
				var dt tuple.DataTuple // fresh per tuple, as in the naive path
				if err := (tuple.NaiveCodec{}).DecodeData(payload[1:], &dt); err != nil {
					continue
				}
				it := item{dest: dt.DestTask, stream: dt.StreamID, key: dt.Key,
					values: append([]any(nil), dt.Values...)}
				if len(dt.Roots) > 0 {
					it.roots = append([]uint64(nil), dt.Roots...)
				}
				ex := w.c.executorOf(it.dest)
				select {
				case ex.inQ <- it:
				case <-w.c.stop:
					return
				}
			case markAck:
				body, dest := splitDest(payload[1:])
				var a tuple.AckTuple
				if err := tuple.DecodeAck(body, &a); err != nil {
					continue
				}
				ex := w.c.executorOf(dest)
				select {
				case ex.inQ <- item{dest: dest, isAck: true, ack: a}:
				case <-w.c.stop:
					return
				}
			}
		}
	}
}
