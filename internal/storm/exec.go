package storm

import (
	"time"

	"heron/api"
	"heron/internal/acker"
	"heron/internal/core"
	"heron/internal/metrics"
	"heron/internal/tuple"
)

// taskContext implements api.TopologyContext for a baseline task.
type taskContext struct {
	c *Cluster
	t *task
}

// TopologyName implements api.TopologyContext.
func (x taskContext) TopologyName() string { return x.c.spec.Topology.Name }

// ComponentName implements api.TopologyContext.
func (x taskContext) ComponentName() string { return x.t.info.component }

// ComponentIndex implements api.TopologyContext.
func (x taskContext) ComponentIndex() int32 { return x.t.info.index }

// TaskID implements api.TopologyContext.
func (x taskContext) TaskID() int32 { return x.t.info.id }

// ComponentParallelism implements api.TopologyContext.
func (x taskContext) ComponentParallelism(component string) int {
	return len(x.c.plan.compTasks[component])
}

// Metrics implements api.TopologyContext: user metrics land in the
// cluster's registry under the "user." namespace, tagged with the task's
// identity.
func (x taskContext) Metrics() api.ComponentMetrics {
	return userMetrics{
		reg:  x.c.reg,
		tags: metrics.Tags{Component: x.t.info.component, Task: x.t.info.id},
	}
}

// userMetrics adapts the registry to the narrow api.ComponentMetrics
// registration interface.
type userMetrics struct {
	reg  *metrics.Registry
	tags metrics.Tags
}

func (u userMetrics) Counter(name string) api.MetricCounter {
	return u.reg.Counter(metrics.UserPrefix+name, u.tags)
}

func (u userMetrics) Gauge(name string) api.MetricGauge {
	return u.reg.Gauge(metrics.UserPrefix+name, u.tags)
}

func (u userMetrics) Histogram(name string) api.MetricHistogram {
	return u.reg.Histogram(metrics.UserPrefix+name, u.tags)
}

// destinations computes the destination tasks for one emit, mirroring the
// Heron router's grouping semantics.
func (c *Cluster) destinations(streamID int32, values []any, dst []int32, rrState *uint64) []int32 {
	for i := range c.plan.streams[streamID].consumers {
		cons := &c.plan.streams[streamID].consumers[i]
		if len(cons.tasks) == 0 {
			continue
		}
		switch cons.grouping {
		case core.GroupShuffle:
			*rrState++
			dst = append(dst, cons.tasks[int(*rrState%uint64(len(cons.tasks)))])
		case core.GroupFields:
			h := core.HashFields(values, cons.fieldIdx)
			dst = append(dst, cons.tasks[int(h%uint64(len(cons.tasks)))])
		case core.GroupAll:
			dst = append(dst, cons.tasks...)
		case core.GroupGlobal:
			dst = append(dst, cons.tasks[0])
		}
	}
	return dst
}

// spoutCollector implements api.SpoutCollector for one spout task.
type spoutCollector struct {
	c  *Cluster
	t  *task
	rr uint64
}

// Emit implements api.SpoutCollector.
func (sc *spoutCollector) Emit(stream string, msgID any, values ...any) {
	c, t := sc.c, sc.t
	sid, ok := c.plan.streamID(t.info.component, stream)
	if !ok {
		return
	}
	dests := c.destinations(sid, values, nil, &sc.rr)
	if len(dests) == 0 {
		return
	}
	reliable := msgID != nil && c.cfg.AckingEnabled
	var root, anchorXor uint64
	if reliable {
		root = core.MakeRoot(t.info.id, t.rng.Uint64())
	}
	for _, dest := range dests {
		// One TupleImpl per destination: fresh values list, metadata
		// object and timestamp, as the JVM engine allocates.
		it := item{
			dest: dest, stream: sid,
			values: append([]any(nil), values...),
			meta:   &tupleMeta{srcTask: t.info.id, createdNs: time.Now().UnixNano()},
		}
		if reliable {
			it.key = t.rng.Uint64() | 1
			anchorXor ^= it.key
			it.roots = []uint64{root}
			it.meta.anchors = map[uint64]uint64{root: it.key}
		}
		c.deliver(t.e, it)
		c.mEmitted.Inc(1)
	}
	if reliable {
		t.pending[root] = pendingEmit{msgID: msgID, emitNs: time.Now().UnixNano()}
		t.inflight++
		// Init message to the acker task owning this root.
		c.deliver(t.e, item{
			dest: c.plan.ackerFor(root), isAck: true,
			ack: tuple.AckTuple{Kind: tuple.AckAnchor, SpoutTask: t.info.id, Root: root, Delta: anchorXor},
		})
	}
}

// boltTuple implements api.Tuple for the baseline.
type boltTuple struct {
	values     api.Values
	source     string
	stream     string
	key        uint64
	roots      []uint64
	emittedXor uint64
	done       bool
}

// Values implements api.Tuple.
func (t *boltTuple) Values() api.Values { return t.values }

// SourceComponent implements api.Tuple.
func (t *boltTuple) SourceComponent() string { return t.source }

// Stream implements api.Tuple.
func (t *boltTuple) Stream() string { return t.stream }

// String implements api.Tuple.
func (t *boltTuple) String(i int) string { return t.values[i].(string) }

// Int implements api.Tuple.
func (t *boltTuple) Int(i int) int64 { return t.values[i].(int64) }

// Float implements api.Tuple.
func (t *boltTuple) Float(i int) float64 { return t.values[i].(float64) }

// Bool implements api.Tuple.
func (t *boltTuple) Bool(i int) bool { return t.values[i].(bool) }

// Bytes implements api.Tuple.
func (t *boltTuple) Bytes(i int) []byte { return t.values[i].([]byte) }

// boltCollector implements api.BoltCollector for one bolt task.
type boltCollector struct {
	c  *Cluster
	t  *task
	rr uint64
}

// Emit implements api.BoltCollector.
func (bc *boltCollector) Emit(stream string, anchors []api.Tuple, values ...any) {
	c, t := bc.c, bc.t
	sid, ok := c.plan.streamID(t.info.component, stream)
	if !ok {
		return
	}
	dests := c.destinations(sid, values, nil, &bc.rr)
	if len(dests) == 0 {
		return
	}
	var roots []uint64
	var anchorTuples []*boltTuple
	reliable := c.cfg.AckingEnabled && len(anchors) > 0
	if reliable {
		for _, a := range anchors {
			bt, ok := a.(*boltTuple)
			if !ok {
				continue
			}
			anchorTuples = append(anchorTuples, bt)
			for _, r := range bt.roots {
				dup := false
				for _, have := range roots {
					if have == r {
						dup = true
					}
				}
				if !dup {
					roots = append(roots, r)
				}
			}
		}
		reliable = len(roots) > 0
	}
	for _, dest := range dests {
		it := item{
			dest: dest, stream: sid,
			values: append([]any(nil), values...),
			meta:   &tupleMeta{srcTask: t.info.id, createdNs: time.Now().UnixNano()},
		}
		if reliable {
			it.key = t.rng.Uint64() | 1
			it.roots = roots
			it.meta.anchors = make(map[uint64]uint64, len(roots))
			for _, r := range roots {
				it.meta.anchors[r] = it.key
			}
			for _, bt := range anchorTuples {
				bt.emittedXor ^= it.key
			}
		}
		c.deliver(t.e, it)
		c.mEmitted.Inc(1)
	}
}

// Ack implements api.BoltCollector.
func (bc *boltCollector) Ack(at api.Tuple) {
	bt, ok := at.(*boltTuple)
	if !ok || bt.done {
		return
	}
	bt.done = true
	c, t := bc.c, bc.t
	if !c.cfg.AckingEnabled || len(bt.roots) == 0 {
		return
	}
	delta := bt.key ^ bt.emittedXor
	for _, root := range bt.roots {
		c.deliver(t.e, item{
			dest: c.plan.ackerFor(root), isAck: true,
			ack: tuple.AckTuple{Kind: tuple.AckAck, SpoutTask: core.RootSpout(root), Root: root, Delta: delta},
		})
	}
}

// Fail implements api.BoltCollector.
func (bc *boltCollector) Fail(at api.Tuple) {
	bt, ok := at.(*boltTuple)
	if !ok || bt.done {
		return
	}
	bt.done = true
	c, t := bc.c, bc.t
	if !c.cfg.AckingEnabled || len(bt.roots) == 0 {
		return
	}
	for _, root := range bt.roots {
		c.deliver(t.e, item{
			dest: c.plan.ackerFor(root), isAck: true,
			ack: tuple.AckTuple{Kind: tuple.AckFail, SpoutTask: core.RootSpout(root), Root: root},
		})
	}
}

// spoutLoop is an executor thread multiplexing spout tasks: Storm's
// executor model where several tasks share one thread.
func (ex *executor) spoutLoop() {
	defer ex.w.c.wg.Done()
	c := ex.w.c
	maxPending := c.cfg.MaxSpoutPending
	idle := time.NewTimer(time.Hour)
	defer idle.Stop()
	for {
		// Drain queued acks without blocking.
		for {
			select {
			case it := <-ex.inQ:
				ex.handleItem(it)
				continue
			case <-c.stop:
				return
			default:
			}
			break
		}
		progress := false
		for _, t := range ex.tasks {
			if maxPending > 0 && t.inflight >= maxPending {
				continue
			}
			if t.spout.NextTuple() {
				progress = true
			}
		}
		if !progress {
			idle.Reset(200 * time.Microsecond)
			select {
			case it := <-ex.inQ:
				ex.handleItem(it)
			case <-idle.C:
			case <-c.stop:
				return
			}
		}
	}
}

// boltLoop is an executor thread for bolt and acker tasks.
func (ex *executor) boltLoop() {
	defer ex.w.c.wg.Done()
	c := ex.w.c
	var rotate <-chan time.Time
	if ex.isAckerExecutor() && c.cfg.AckingEnabled {
		timeout := c.cfg.MessageTimeout
		if timeout <= 0 {
			timeout = 30 * time.Second
		}
		tick := time.NewTicker(timeout / time.Duration(acker.DefaultBuckets-1))
		defer tick.Stop()
		rotate = tick.C
	}
	for {
		select {
		case <-c.stop:
			return
		case it := <-ex.inQ:
			ex.handleItem(it)
		case <-rotate:
			for _, t := range ex.tasks {
				if t.trees != nil {
					t.trees.Rotate()
				}
			}
		}
	}
}

func (ex *executor) isAckerExecutor() bool {
	for _, t := range ex.tasks {
		if t.info.isAcker {
			return true
		}
	}
	return false
}

// handleItem dispatches one queued item to its owning task.
func (ex *executor) handleItem(it item) {
	t := ex.byTask[it.dest]
	if t == nil {
		return
	}
	c := ex.w.c
	switch {
	case t.info.isAcker:
		t.handleAckerItem(c, it)
	case t.spout != nil:
		t.handleSpoutAck(c, it)
	case t.bolt != nil:
		if it.isAck {
			return
		}
		bt := &boltTuple{values: it.values, key: it.key, roots: it.roots}
		if int(it.stream) < len(c.plan.streams) {
			sr := &c.plan.streams[it.stream]
			bt.source, bt.stream = sr.srcComponent, sr.stream
		}
		c.mExecuted.Inc(1)
		_ = t.bolt.Execute(bt)
	}
}

// handleAckerItem applies an ack message to the acker task's XOR state.
func (t *task) handleAckerItem(c *Cluster, it item) {
	if !it.isAck {
		return
	}
	switch it.ack.Kind {
	case tuple.AckAnchor:
		t.rootSpout[it.ack.Root] = it.ack.SpoutTask
		t.trees.Anchor(it.ack.Root, it.ack.Delta)
	case tuple.AckAck:
		t.trees.Ack(it.ack.Root, it.ack.Delta)
	case tuple.AckFail:
		t.trees.Fail(it.ack.Root)
	}
}

// treeDone runs on the acker executor thread when a tree finishes: notify
// the owning spout through the normal queues.
func (c *Cluster) treeDone(ackerTask *task, root uint64, r acker.Result) {
	spout, ok := ackerTask.rootSpout[root]
	if !ok {
		spout = core.RootSpout(root)
	}
	delete(ackerTask.rootSpout, root)
	kind := tuple.AckAck
	switch r {
	case acker.Failed:
		kind = tuple.AckFail
	case acker.TimedOut:
		kind = tuple.AckExpired
	}
	c.deliver(ackerTask.e, item{
		dest: spout, isAck: true,
		ack: tuple.AckTuple{Kind: kind, SpoutTask: spout, Root: root},
	})
}

// handleSpoutAck completes one pending emission on the spout task.
func (t *task) handleSpoutAck(c *Cluster, it item) {
	if !it.isAck {
		return
	}
	p, ok := t.pending[it.ack.Root]
	if !ok {
		return
	}
	delete(t.pending, it.ack.Root)
	t.inflight--
	switch it.ack.Kind {
	case tuple.AckAck:
		c.mAcked.Inc(1)
		c.mLatency.Observe(time.Now().UnixNano() - p.emitNs)
		t.spout.Ack(p.msgID)
	case tuple.AckFail, tuple.AckExpired:
		c.mFailed.Inc(1)
		t.spout.Fail(p.msgID)
	}
}
