package storm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"heron/api"
	"heron/internal/core"
)

// Test components mirror the ones used in the Heron integration tests.

type wordSpout struct {
	words   []string
	next    int
	acked   *atomic.Int64
	failed  *atomic.Int64
	emitted *atomic.Int64
	out     api.SpoutCollector
	replay  []string
	ackMode bool
}

func (s *wordSpout) Open(_ api.TopologyContext, out api.SpoutCollector) error {
	s.out = out
	return nil
}

func (s *wordSpout) NextTuple() bool {
	var w string
	switch {
	case len(s.replay) > 0:
		w = s.replay[len(s.replay)-1]
		s.replay = s.replay[:len(s.replay)-1]
	case s.next < len(s.words):
		w = s.words[s.next]
		s.next++
	default:
		return false
	}
	var id any
	if s.ackMode {
		id = w
	}
	s.out.Emit("", id, w)
	s.emitted.Add(1)
	return true
}

func (s *wordSpout) Ack(any) { s.acked.Add(1) }
func (s *wordSpout) Fail(m any) {
	s.failed.Add(1)
	s.replay = append(s.replay, m.(string))
}
func (s *wordSpout) Close() error { return nil }

type countBolt struct {
	mu    *sync.Mutex
	seen  map[string]map[int32]int64
	total *atomic.Int64
	out   api.BoltCollector
	task  int32
}

func (b *countBolt) Prepare(ctx api.TopologyContext, out api.BoltCollector) error {
	b.out, b.task = out, ctx.TaskID()
	return nil
}

func (b *countBolt) Execute(t api.Tuple) error {
	w := t.String(0)
	b.mu.Lock()
	m := b.seen[w]
	if m == nil {
		m = map[int32]int64{}
		b.seen[w] = m
	}
	m[b.task]++
	b.mu.Unlock()
	b.total.Add(1)
	b.out.Ack(t)
	return nil
}

func (b *countBolt) Cleanup() error { return nil }

type fixture struct {
	emitted, acked, failed atomic.Int64
	total                  atomic.Int64
	mu                     sync.Mutex
	seen                   map[string]map[int32]int64
}

func (f *fixture) spec(t *testing.T, spouts, bolts, perSpout int, ack bool) *api.Spec {
	t.Helper()
	f.seen = map[string]map[int32]int64{}
	words := make([]string, perSpout)
	for i := range words {
		words[i] = fmt.Sprintf("w%03d", i%89)
	}
	b := api.NewTopologyBuilder("storm-" + t.Name())
	b.SetSpout("word", func() api.Spout {
		return &wordSpout{words: words, acked: &f.acked, failed: &f.failed, emitted: &f.emitted, ackMode: ack}
	}, spouts).OutputFields("word")
	b.SetBolt("count", func() api.Bolt {
		return &countBolt{mu: &f.mu, seen: f.seen, total: &f.total}
	}, bolts).FieldsGrouping("word", "", "word")
	spec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout: %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestBuildPlanShape(t *testing.T) {
	var f fixture
	spec := f.spec(t, 4, 6, 10, false)
	p, err := buildPlan(spec.Topology, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 4+6 component tasks + 2 ackers.
	if len(p.tasks) != 12 {
		t.Fatalf("tasks = %d", len(p.tasks))
	}
	// Executors: word 4/2=2, count 6/2=3, ackers 2 → 7.
	if len(p.executors) != 7 {
		t.Errorf("executors = %d", len(p.executors))
	}
	// Multiple tasks per executor: the Storm packing the paper contrasts
	// with Heron's one-task-per-instance model.
	multi := 0
	for _, tasks := range p.executors {
		if len(tasks) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no executor packs multiple tasks")
	}
	// Workers each got executors.
	byWorker := map[int]int{}
	for _, ti := range p.tasks {
		byWorker[ti.worker]++
	}
	if len(byWorker) != 2 {
		t.Errorf("workers used = %d", len(byWorker))
	}
	if len(p.ackerTasks) != 2 {
		t.Errorf("ackers = %d", len(p.ackerTasks))
	}
}

func TestBuildPlanErrors(t *testing.T) {
	var f fixture
	spec := f.spec(t, 1, 1, 1, false)
	if _, err := buildPlan(spec.Topology, 0, 1, 1); err == nil {
		t.Error("workers=0 accepted")
	}
	bad := &core.Topology{Name: ""}
	if _, err := buildPlan(bad, 1, 1, 1); err == nil {
		t.Error("invalid topology accepted")
	}
}

func TestWordCountWithoutAcks(t *testing.T) {
	var f fixture
	spec := f.spec(t, 2, 3, 2000, false)
	cfg := NewConfig()
	cfg.Workers = 2
	c, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	waitFor(t, 20*time.Second, "all words counted", func() bool {
		return f.total.Load() >= 2*2000
	})
	// Fields grouping correctness across the baseline.
	f.mu.Lock()
	defer f.mu.Unlock()
	for w, tasks := range f.seen {
		if len(tasks) != 1 {
			t.Errorf("word %q on %d tasks", w, len(tasks))
		}
	}
}

func TestWordCountWithAcks(t *testing.T) {
	var f fixture
	spec := f.spec(t, 2, 2, 1500, true)
	cfg := NewConfig()
	cfg.Workers = 2
	cfg.AckingEnabled = true
	cfg.MaxSpoutPending = 100
	cfg.MessageTimeout = 5 * time.Second
	c, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	waitFor(t, 30*time.Second, "all tuples acked", func() bool {
		return f.acked.Load() >= 2*1500
	})
	emitted, executed, acked, _ := c.Counts()
	if emitted < 3000 || executed < 3000 || acked < 3000 {
		t.Errorf("counts: emitted=%d executed=%d acked=%d", emitted, executed, acked)
	}
	if c.Latency().Count == 0 {
		t.Error("no latency samples")
	}
}

func TestStopIsIdempotentAndPrompt(t *testing.T) {
	var f fixture
	spec := f.spec(t, 2, 2, 1_000_000, false)
	c, err := Run(spec, NewConfig())
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "progress", func() bool { return f.total.Load() > 100 })
	done := make(chan struct{})
	go func() {
		c.Stop()
		c.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop hung")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(nil, nil); err == nil {
		t.Error("nil spec accepted")
	}
}

// multiStreamSpout emits on two streams to cover the baseline's named-
// stream routing.
type multiStreamSpout struct {
	out api.SpoutCollector
	n   int
}

func (s *multiStreamSpout) Open(_ api.TopologyContext, out api.SpoutCollector) error {
	s.out = out
	return nil
}

func (s *multiStreamSpout) NextTuple() bool {
	if s.n >= 300 {
		return false
	}
	s.out.Emit("", nil, "main")
	if s.n%10 == 0 {
		s.out.Emit("side", nil, "side")
	}
	s.n++
	return true
}

func (s *multiStreamSpout) Ack(any)      {}
func (s *multiStreamSpout) Fail(any)     {}
func (s *multiStreamSpout) Close() error { return nil }

type countingBolt struct {
	n   *atomic.Int64
	out api.BoltCollector
}

func (b *countingBolt) Prepare(_ api.TopologyContext, out api.BoltCollector) error {
	b.out = out
	return nil
}

func (b *countingBolt) Execute(t api.Tuple) error {
	b.n.Add(1)
	b.out.Ack(t)
	return nil
}

func (b *countingBolt) Cleanup() error { return nil }

// TestStormMultiStreamAndAllGrouping exercises the baseline's stream
// table and all-grouping replication, matching the Heron engine's
// semantics on the same topology shape.
func TestStormMultiStreamAndAllGrouping(t *testing.T) {
	var mainCount, sideCount atomic.Int64
	b := api.NewTopologyBuilder("storm-multi")
	b.SetSpout("src", func() api.Spout { return &multiStreamSpout{} }, 1).
		OutputFields("v").
		OutputStream("side", "v")
	b.SetBolt("main", func() api.Bolt { return &countingBolt{n: &mainCount} }, 2).
		ShuffleGrouping("src", "")
	b.SetBolt("fan", func() api.Bolt { return &countingBolt{n: &sideCount} }, 3).
		AllGrouping("src", "side")
	spec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewConfig()
	cfg.Workers = 2
	c, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	waitFor(t, 20*time.Second, "all streams drained", func() bool {
		return mainCount.Load() >= 300 && sideCount.Load() >= 30*3
	})
	if got := sideCount.Load(); got != 90 {
		t.Errorf("all-grouping delivered %d, want 90 (30 milestones × 3 tasks)", got)
	}
}
