package checkpoint

import (
	"fmt"
	"sync"

	"heron/internal/core"
)

func init() {
	Register("memory", func() Backend { return &memoryBackend{} })
}

// Process-global snapshot stores keyed by Config.StateRoot, mirroring
// statemgr's shared in-memory trees: every container session with the
// same root sees the same snapshots, the way separate processes would
// share one checkpoint service.
var (
	memMu     sync.Mutex
	memStores = map[string]*memStore{}
)

type memStore struct {
	mu sync.Mutex
	// snaps: topology → checkpoint id → task → snapshot.
	snaps map[string]map[int64]map[int32][]byte
	// committed: topology → latest committed id.
	committed map[string]int64
}

func sharedMemStore(root string) *memStore {
	memMu.Lock()
	defer memMu.Unlock()
	s, ok := memStores[root]
	if !ok {
		s = &memStore{
			snaps:     map[string]map[int64]map[int32][]byte{},
			committed: map[string]int64{},
		}
		memStores[root] = s
	}
	return s
}

// ResetSharedMemory drops the snapshot store for a root; tests use it for
// isolation, paired with statemgr.ResetSharedStore.
func ResetSharedMemory(root string) {
	memMu.Lock()
	defer memMu.Unlock()
	delete(memStores, root)
}

// memoryBackend is a session on the shared in-process store.
type memoryBackend struct {
	store *memStore
}

func (m *memoryBackend) Initialize(cfg *core.Config) error {
	root := cfg.StateRoot
	if root == "" {
		root = "/heron"
	}
	m.store = sharedMemStore(root)
	return nil
}

func (m *memoryBackend) checkInit() error {
	if m.store == nil {
		return fmt.Errorf("checkpoint: memory backend not initialized")
	}
	return nil
}

func (m *memoryBackend) Save(topology string, checkpointID int64, task int32, data []byte) error {
	if err := m.checkInit(); err != nil {
		return err
	}
	m.store.mu.Lock()
	defer m.store.mu.Unlock()
	byID := m.store.snaps[topology]
	if byID == nil {
		byID = map[int64]map[int32][]byte{}
		m.store.snaps[topology] = byID
	}
	byTask := byID[checkpointID]
	if byTask == nil {
		byTask = map[int32][]byte{}
		byID[checkpointID] = byTask
	}
	byTask[task] = append([]byte(nil), data...)
	return nil
}

func (m *memoryBackend) Load(topology string, checkpointID int64, task int32) ([]byte, error) {
	if err := m.checkInit(); err != nil {
		return nil, err
	}
	m.store.mu.Lock()
	defer m.store.mu.Unlock()
	data, ok := m.store.snaps[topology][checkpointID][task]
	if !ok {
		return nil, core.ErrNotFound
	}
	return append([]byte(nil), data...), nil
}

func (m *memoryBackend) Commit(topology string, checkpointID int64) error {
	if err := m.checkInit(); err != nil {
		return err
	}
	m.store.mu.Lock()
	defer m.store.mu.Unlock()
	if checkpointID > m.store.committed[topology] {
		m.store.committed[topology] = checkpointID
	}
	// Retire snapshots older than the newest commit; only the latest
	// committed checkpoint is ever restored.
	for id := range m.store.snaps[topology] {
		if id < m.store.committed[topology] {
			delete(m.store.snaps[topology], id)
		}
	}
	return nil
}

func (m *memoryBackend) LatestCommitted(topology string) (int64, error) {
	if err := m.checkInit(); err != nil {
		return 0, err
	}
	m.store.mu.Lock()
	defer m.store.mu.Unlock()
	return m.store.committed[topology], nil
}

func (m *memoryBackend) Dispose(topology string) error {
	if err := m.checkInit(); err != nil {
		return err
	}
	m.store.mu.Lock()
	defer m.store.mu.Unlock()
	delete(m.store.snaps, topology)
	delete(m.store.committed, topology)
	return nil
}

func (m *memoryBackend) Close() error {
	m.store = nil
	return nil
}
