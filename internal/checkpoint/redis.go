package checkpoint

import (
	"fmt"
	"strconv"
	"sync"

	"heron/internal/core"
	"heron/internal/extsvc/redissim"
)

func init() {
	Register("redis", func() Backend { return &redisBackend{} })
}

// Process-global simulated Redis servers keyed by Config.StateRoot: one
// "deployment" per topology namespace, shared by every container session,
// like the shared memory/localfs stores.
var (
	redisMu      sync.Mutex
	redisServers = map[string]*redissim.Server{}
)

func sharedRedisServer(root string) *redissim.Server {
	redisMu.Lock()
	defer redisMu.Unlock()
	s, ok := redisServers[root]
	if !ok {
		s = redissim.NewServer(8)
		redisServers[root] = s
	}
	return s
}

// ResetSharedRedis drops the simulated server for a root (test isolation).
func ResetSharedRedis(root string) {
	redisMu.Lock()
	defer redisMu.Unlock()
	delete(redisServers, root)
}

// redisBackend stores snapshots as blobs in the simulated Redis, paying
// the RESP encode/parse cost per operation like the ETL workload does.
//
// Keys: ckpt/<topology>/<id>/<task> for snapshots, ckpt/<topology>/latest
// for the commit record.
type redisBackend struct {
	mu sync.Mutex // serializes the client (shared scratch buffer)
	cl *redissim.Client
}

func (r *redisBackend) Initialize(cfg *core.Config) error {
	root := cfg.StateRoot
	if root == "" {
		root = "/heron"
	}
	r.cl = redissim.NewClient(sharedRedisServer(root))
	return nil
}

func (r *redisBackend) checkInit() error {
	if r.cl == nil {
		return fmt.Errorf("checkpoint: redis backend not initialized")
	}
	return nil
}

func snapKey(topology string, id int64, task int32) string {
	return "ckpt/" + topology + "/" + strconv.FormatInt(id, 10) + "/" + strconv.FormatInt(int64(task), 10)
}

func latestKey(topology string) string { return "ckpt/" + topology + "/latest" }

func (r *redisBackend) Save(topology string, checkpointID int64, task int32, data []byte) error {
	if err := r.checkInit(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cl.SetBlob(snapKey(topology, checkpointID, task), data)
}

func (r *redisBackend) Load(topology string, checkpointID int64, task int32) ([]byte, error) {
	if err := r.checkInit(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	data, ok, err := r.cl.GetBlob(snapKey(topology, checkpointID, task))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, core.ErrNotFound
	}
	return data, nil
}

func (r *redisBackend) Commit(topology string, checkpointID int64) error {
	if err := r.checkInit(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	latest, err := r.latestLocked(topology)
	if err != nil {
		return err
	}
	if checkpointID <= latest {
		return nil
	}
	return r.cl.SetBlob(latestKey(topology), []byte(strconv.FormatInt(checkpointID, 10)))
}

func (r *redisBackend) latestLocked(topology string) (int64, error) {
	raw, ok, err := r.cl.GetBlob(latestKey(topology))
	if err != nil || !ok {
		return 0, err
	}
	id, err := strconv.ParseInt(string(raw), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: corrupt latest record: %w", err)
	}
	return id, nil
}

func (r *redisBackend) LatestCommitted(topology string) (int64, error) {
	if err := r.checkInit(); err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.latestLocked(topology)
}

func (r *redisBackend) Dispose(topology string) error {
	if err := r.checkInit(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cl.DeleteBlobs("ckpt/" + topology + "/")
}

func (r *redisBackend) Close() error {
	r.cl = nil
	return nil
}
