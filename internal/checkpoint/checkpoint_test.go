package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"heron/internal/core"
)

func TestStateCodecRoundTrip(t *testing.T) {
	s := NewMapState()
	s.Set("alpha", []byte("1"))
	s.Set("beta", []byte{0, 1, 2, 255})
	s.Set("empty", nil)
	enc := EncodeState(s)
	got, err := DecodeState(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("Len = %d, want 3", got.Len())
	}
	if string(got.Get("alpha")) != "1" || !bytes.Equal(got.Get("beta"), []byte{0, 1, 2, 255}) {
		t.Fatalf("round-trip mismatch: %v", got.m)
	}
	if len(got.Get("empty")) != 0 {
		t.Fatalf("empty value = %q", got.Get("empty"))
	}
}

func TestStateCodecDeterministic(t *testing.T) {
	a, b := NewMapState(), NewMapState()
	for i := 0; i < 64; i++ {
		k, v := fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("val-%d", i))
		a.Set(k, v)
	}
	for i := 63; i >= 0; i-- {
		k, v := fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("val-%d", i))
		b.Set(k, v)
	}
	if !bytes.Equal(EncodeState(a), EncodeState(b)) {
		t.Fatal("equal states encoded differently")
	}
}

func TestStateCodecRejectsTrailing(t *testing.T) {
	enc := append(EncodeState(NewMapState()), 0xff)
	if _, err := DecodeState(enc); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestDecodeStateEmpty(t *testing.T) {
	s, err := DecodeState(EncodeState(NewMapState()))
	if err != nil || s.Len() != 0 {
		t.Fatalf("empty state round-trip: %v, len %d", err, s.Len())
	}
}

// newTestBackend builds an initialized session of each registered backend
// against an isolated store.
func newTestBackend(t *testing.T, name string) Backend {
	t.Helper()
	cfg := core.NewConfig()
	cfg.StateRoot = "/test-" + name + "-" + t.Name()
	switch name {
	case "memory":
		root := cfg.StateRoot
		t.Cleanup(func() { ResetSharedMemory(root) })
	case "redis":
		root := cfg.StateRoot
		t.Cleanup(func() { ResetSharedRedis(root) })
	case "localfs":
		cfg.Extra = map[string]string{"checkpoint.root": t.TempDir()}
	}
	b, err := New(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Initialize(cfg); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	return b
}

var backendNames = []string{"memory", "localfs", "redis"}

func TestBackendRoundTrip(t *testing.T) {
	for _, name := range backendNames {
		t.Run(name, func(t *testing.T) {
			b := newTestBackend(t, name)
			if _, err := b.Load("topo", 1, 0); !errors.Is(err, core.ErrNotFound) {
				t.Fatalf("missing snapshot: err = %v, want ErrNotFound", err)
			}
			if err := b.Save("topo", 1, 0, []byte("snap-a")); err != nil {
				t.Fatal(err)
			}
			if err := b.Save("topo", 1, 7, []byte("snap-b")); err != nil {
				t.Fatal(err)
			}
			got, err := b.Load("topo", 1, 7)
			if err != nil || string(got) != "snap-b" {
				t.Fatalf("Load = %q, %v", got, err)
			}
			// Snapshots are uncommitted until Commit.
			if latest, err := b.LatestCommitted("topo"); err != nil || latest != 0 {
				t.Fatalf("LatestCommitted = %d, %v, want 0", latest, err)
			}
			if err := b.Commit("topo", 1); err != nil {
				t.Fatal(err)
			}
			if latest, err := b.LatestCommitted("topo"); err != nil || latest != 1 {
				t.Fatalf("LatestCommitted = %d, %v, want 1", latest, err)
			}
		})
	}
}

func TestBackendCommitMonotonic(t *testing.T) {
	for _, name := range backendNames {
		t.Run(name, func(t *testing.T) {
			b := newTestBackend(t, name)
			if err := b.Commit("topo", 5); err != nil {
				t.Fatal(err)
			}
			// A late commit of an older checkpoint must not roll back.
			if err := b.Commit("topo", 3); err != nil {
				t.Fatal(err)
			}
			if latest, _ := b.LatestCommitted("topo"); latest != 5 {
				t.Fatalf("LatestCommitted = %d, want 5", latest)
			}
		})
	}
}

func TestBackendRetiresSuperseded(t *testing.T) {
	for _, name := range []string{"memory", "localfs"} {
		t.Run(name, func(t *testing.T) {
			b := newTestBackend(t, name)
			for id := int64(1); id <= 3; id++ {
				if err := b.Save("topo", id, 0, []byte{byte(id)}); err != nil {
					t.Fatal(err)
				}
				if err := b.Commit("topo", id); err != nil {
					t.Fatal(err)
				}
			}
			// Only the newest committed checkpoint must survive.
			if _, err := b.Load("topo", 1, 0); !errors.Is(err, core.ErrNotFound) {
				t.Fatalf("superseded snapshot still loadable: %v", err)
			}
			if got, err := b.Load("topo", 3, 0); err != nil || got[0] != 3 {
				t.Fatalf("latest snapshot: %v, %v", got, err)
			}
		})
	}
}

func TestBackendDispose(t *testing.T) {
	for _, name := range backendNames {
		t.Run(name, func(t *testing.T) {
			b := newTestBackend(t, name)
			if err := b.Save("topo", 1, 0, []byte("x")); err != nil {
				t.Fatal(err)
			}
			if err := b.Commit("topo", 1); err != nil {
				t.Fatal(err)
			}
			if err := b.Dispose("topo"); err != nil {
				t.Fatal(err)
			}
			if latest, err := b.LatestCommitted("topo"); err != nil || latest != 0 {
				t.Fatalf("after Dispose: LatestCommitted = %d, %v", latest, err)
			}
			if _, err := b.Load("topo", 1, 0); !errors.Is(err, core.ErrNotFound) {
				t.Fatalf("after Dispose: Load err = %v", err)
			}
		})
	}
}

func TestBackendSessionsShareStore(t *testing.T) {
	for _, name := range backendNames {
		t.Run(name, func(t *testing.T) {
			cfg := core.NewConfig()
			cfg.StateRoot = "/shared-" + name + "-" + t.Name()
			if name == "localfs" {
				cfg.Extra = map[string]string{"checkpoint.root": t.TempDir()}
			}
			t.Cleanup(func() {
				ResetSharedMemory(cfg.StateRoot)
				ResetSharedRedis(cfg.StateRoot)
			})
			a, _ := New(name)
			b, _ := New(name)
			if err := a.Initialize(cfg); err != nil {
				t.Fatal(err)
			}
			if err := b.Initialize(cfg); err != nil {
				t.Fatal(err)
			}
			defer a.Close()
			defer b.Close()
			if err := a.Save("topo", 1, 0, []byte("via-a")); err != nil {
				t.Fatal(err)
			}
			if err := a.Commit("topo", 1); err != nil {
				t.Fatal(err)
			}
			if got, err := b.Load("topo", 1, 0); err != nil || string(got) != "via-a" {
				t.Fatalf("second session Load = %q, %v", got, err)
			}
			if latest, _ := b.LatestCommitted("topo"); latest != 1 {
				t.Fatalf("second session LatestCommitted = %d", latest)
			}
		})
	}
}

func TestNewUnknownBackend(t *testing.T) {
	if _, err := New("no-such-backend"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if b, err := New(""); err != nil {
		t.Fatalf("default backend: %v", err)
	} else if _, ok := b.(*memoryBackend); !ok {
		t.Fatalf("default backend = %T, want memory", b)
	}
}

func TestCoordinatorBarrier(t *testing.T) {
	b := newTestBackend(t, "memory")
	c := NewCoordinator("topo", b)
	id, ok := c.Begin([]int32{0, 1, 2})
	if !ok || id != 1 {
		t.Fatalf("Begin = %d, %v", id, ok)
	}
	for _, task := range []int32{0, 1} {
		if complete, err := c.Saved(task, id); err != nil || complete {
			t.Fatalf("task %d: complete = %v, err = %v", task, complete, err)
		}
	}
	// Duplicate and stale acks are ignored.
	if complete, _ := c.Saved(0, id); complete {
		t.Fatal("duplicate ack completed the barrier")
	}
	if complete, _ := c.Saved(2, id-1); complete {
		t.Fatal("stale ack completed the barrier")
	}
	complete, err := c.Saved(2, id)
	if err != nil || !complete {
		t.Fatalf("final ack: complete = %v, err = %v", complete, err)
	}
	if latest, _ := b.LatestCommitted("topo"); latest != id {
		t.Fatalf("commit not persisted: latest = %d", latest)
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending = %d after commit", c.Pending())
	}
}

func TestCoordinatorAbandonsStalePending(t *testing.T) {
	b := newTestBackend(t, "memory")
	c := NewCoordinator("topo", b)
	id1, _ := c.Begin([]int32{0, 1})
	if _, err := c.Saved(0, id1); err != nil {
		t.Fatal(err)
	}
	// Task 1 died; the next interval abandons checkpoint 1.
	id2, ok := c.Begin([]int32{0, 1})
	if !ok || id2 != id1+1 {
		t.Fatalf("Begin = %d, %v", id2, ok)
	}
	// A straggler ack for the abandoned id must not commit anything.
	if complete, _ := c.Saved(1, id1); complete {
		t.Fatal("abandoned checkpoint completed")
	}
	for _, task := range []int32{0, 1} {
		if _, err := c.Saved(task, id2); err != nil {
			t.Fatal(err)
		}
	}
	if latest, _ := b.LatestCommitted("topo"); latest != id2 {
		t.Fatalf("latest = %d, want %d", latest, id2)
	}
}

func TestCoordinatorInitFromBackend(t *testing.T) {
	b := newTestBackend(t, "memory")
	if err := b.Commit("topo", 9); err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator("topo", b)
	if err := c.InitFromBackend(); err != nil {
		t.Fatal(err)
	}
	if id, _ := c.Begin([]int32{0}); id != 10 {
		t.Fatalf("restarted coordinator reused id %d", id)
	}
}

func TestCoordinatorBeginEmpty(t *testing.T) {
	c := NewCoordinator("topo", nil)
	if _, ok := c.Begin(nil); ok {
		t.Fatal("Begin accepted an empty task set")
	}
}
