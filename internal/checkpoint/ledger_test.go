package checkpoint

import (
	"errors"
	"testing"

	"heron/internal/core"
	"heron/internal/statemgr"
)

// newLedgerStateManagers builds one initialized session of each State
// Manager implementation against an isolated store, as the name → session
// pairs the ledger tests iterate.
func newLedgerStateManagers(t *testing.T) map[string]core.StateManager {
	t.Helper()
	memCfg := core.NewConfig()
	memCfg.StateRoot = "/ledger-" + t.Name()
	root := memCfg.StateRoot
	t.Cleanup(func() { statemgr.ResetSharedStore(root) })
	mem := &statemgr.Memory{}
	if err := mem.Initialize(memCfg); err != nil {
		t.Fatal(err)
	}
	fsCfg := core.NewConfig()
	fsCfg.Extra = map[string]string{"localfs.root": t.TempDir()}
	lfs := &statemgr.LocalFS{}
	if err := lfs.Initialize(fsCfg); err != nil {
		t.Fatal(err)
	}
	return map[string]core.StateManager{"memory": mem, "localfs": lfs}
}

// TestCoordinatorLedgerSurvivesRestart replays the latent gap this PR
// closes: the TMaster dies between an epoch's prepare (barrier started,
// sinks may hold prepared transactions for it) and its global commit. The
// backend only records *committed* checkpoints, so without the ledger a
// restarted coordinator would reuse the in-flight id and conflate two
// different cuts of the stream under one epoch. With the ledger the id
// sequence stays strictly monotone.
func TestCoordinatorLedgerSurvivesRestart(t *testing.T) {
	for name, sm := range newLedgerStateManagers(t) {
		t.Run(name, func(t *testing.T) {
			b := newTestBackend(t, "memory")

			a := NewCoordinator("topo", b)
			a.UseLedger(sm)
			if err := a.InitFromBackend(); err != nil {
				t.Fatal(err)
			}
			first, ok := a.Begin([]int32{1, 2})
			if !ok {
				t.Fatal("Begin failed")
			}
			// One task saves, then the coordinator "dies" mid-barrier:
			// epoch `first` is prepared at task 1 but never commits.
			if done, err := a.Saved(1, first); err != nil || done {
				t.Fatalf("partial save: done=%v err=%v", done, err)
			}

			// Restart: a new coordinator on the same backend and ledger.
			rb := NewCoordinator("topo", b)
			rb.UseLedger(sm)
			if err := rb.InitFromBackend(); err != nil {
				t.Fatal(err)
			}
			second, ok := rb.Begin([]int32{1, 2})
			if !ok {
				t.Fatal("Begin after restart failed")
			}
			if second <= first {
				t.Fatalf("restarted coordinator reused epoch: first=%d second=%d", first, second)
			}

			// A stale ack for the orphaned epoch must not complete anything.
			if done, err := rb.Saved(2, first); err != nil || done {
				t.Fatalf("stale ack: done=%v err=%v", done, err)
			}
			// The replayed barrier completes under the new epoch.
			if done, err := rb.Saved(1, second); err != nil || done {
				t.Fatalf("save 1: done=%v err=%v", done, err)
			}
			done, err := rb.Saved(2, second)
			if err != nil || !done {
				t.Fatalf("save 2: done=%v err=%v", done, err)
			}
			if latest, err := b.LatestCommitted("topo"); err != nil || latest != second {
				t.Fatalf("LatestCommitted = %d, %v, want %d", latest, err, second)
			}
		})
	}
}

// TestCoordinatorWithoutLedgerReusesEpoch pins the gap itself: the same
// restart with no ledger hands out the in-flight id again. If this test
// ever fails, the backend started tracking in-flight epochs and the
// ledger can be retired.
func TestCoordinatorWithoutLedgerReusesEpoch(t *testing.T) {
	b := newTestBackend(t, "memory")
	a := NewCoordinator("topo", b)
	first, _ := a.Begin([]int32{1})

	rb := NewCoordinator("topo", b)
	if err := rb.InitFromBackend(); err != nil {
		t.Fatal(err)
	}
	second, _ := rb.Begin([]int32{1})
	if second != first {
		t.Fatalf("expected the ledger-less coordinator to reuse %d, got %d", first, second)
	}
}

// TestCoordinatorLedgerCoversReserve: ids handed to runtime rescaling are
// part of the same sequence and must not be reused after a restart
// either.
func TestCoordinatorLedgerCoversReserve(t *testing.T) {
	sm := newLedgerStateManagers(t)["memory"]
	b := newTestBackend(t, "memory")
	a := NewCoordinator("topo", b)
	a.UseLedger(sm)
	reserved := a.Reserve()

	rb := NewCoordinator("topo", b)
	rb.UseLedger(sm)
	if err := rb.InitFromBackend(); err != nil {
		t.Fatal(err)
	}
	next, _ := rb.Begin([]int32{1})
	if next <= reserved {
		t.Fatalf("reserved id reused: reserved=%d next=%d", reserved, next)
	}
}

// TestCheckpointLedgerRoundTrip covers the State Manager extension
// directly: set/get across sessions, ErrNotFound when absent.
func TestCheckpointLedgerRoundTrip(t *testing.T) {
	for name, sm := range newLedgerStateManagers(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := sm.GetCheckpointLedger("nope"); !errors.Is(err, core.ErrNotFound) {
				t.Fatalf("absent ledger: err = %v, want ErrNotFound", err)
			}
			want := &core.CheckpointLedger{Next: 7, Pending: 6}
			if err := sm.SetCheckpointLedger("topo", want); err != nil {
				t.Fatal(err)
			}
			got, err := sm.GetCheckpointLedger("topo")
			if err != nil || got.Next != 7 || got.Pending != 6 {
				t.Fatalf("GetCheckpointLedger = %+v, %v", got, err)
			}
			// Overwrites follow the epoch sequence forward.
			if err := sm.SetCheckpointLedger("topo", &core.CheckpointLedger{Next: 9}); err != nil {
				t.Fatal(err)
			}
			got, err = sm.GetCheckpointLedger("topo")
			if err != nil || got.Next != 9 || got.Pending != 0 {
				t.Fatalf("after overwrite = %+v, %v", got, err)
			}
		})
	}
}
