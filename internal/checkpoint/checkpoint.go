// Package checkpoint is the distributed-checkpointing subsystem: the
// aligned-marker (Chandy–Lamport) protocol that upgrades the engine from
// at-least-once replay to checkpoint-based effectively-once for stateful
// topologies.
//
// The moving parts map onto the paper's module boundaries:
//
//   - The Topology Master hosts the Coordinator: a ticker starts
//     checkpoint N by broadcasting OpCheckpointTrigger to every Stream
//     Manager; it commits N once every task has reported OpCheckpointSaved.
//   - Stream Managers inject trigger markers at their local spouts and
//     forward in-stream markers (network.MsgMarker frames) between tasks,
//     flushing any partially batched data for the destination first so
//     markers never overtake tuples.
//   - Instances snapshot themselves: a spout saves on first sight of a
//     marker; a bolt aligns a barrier across all upstream tasks, holding
//     post-marker tuples until the barrier completes, then saves and
//     releases them.
//   - Snapshots persist through a pluggable Backend ("memory", "localfs",
//     "redis") — the same plug-in discipline as the State Manager.
//
// Recovery reads Backend.LatestCommitted once per container launch and
// calls RestoreState on every stateful instance before it processes input.
package checkpoint

import (
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"

	"heron/internal/core"
)

// Backend persists per-task snapshots and the global commit record. All
// methods must be safe for concurrent use: every container holds its own
// backend session against the shared store.
type Backend interface {
	// Initialize connects the backend; cfg carries the store location
	// (StateRoot, Extra keys).
	Initialize(cfg *core.Config) error
	// Save persists one task's snapshot for a checkpoint.
	Save(topology string, checkpointID int64, task int32, data []byte) error
	// Load reads one task's snapshot; core.ErrNotFound if absent.
	Load(topology string, checkpointID int64, task int32) ([]byte, error)
	// Commit durably marks a checkpoint globally complete.
	Commit(topology string, checkpointID int64) error
	// LatestCommitted returns the newest committed checkpoint id, or 0 if
	// none has been committed yet.
	LatestCommitted(topology string) (int64, error)
	// Dispose deletes all of a topology's snapshots (topology kill).
	Dispose(topology string) error
	// Close releases the session.
	Close() error
}

// Factory builds an uninitialized backend.
type Factory func() Backend

var (
	regMu    sync.Mutex
	backends = map[string]Factory{}
)

// Register adds a backend under a name; later registrations replace
// earlier ones, mirroring the core module registries.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	backends[name] = f
}

// New builds the named backend ("" selects "memory").
func New(name string) (Backend, error) {
	if name == "" {
		name = "memory"
	}
	regMu.Lock()
	f, ok := backends[name]
	names := make([]string, 0, len(backends))
	for n := range backends {
		names = append(names, n)
	}
	regMu.Unlock()
	if !ok {
		sort.Strings(names)
		return nil, fmt.Errorf("checkpoint: unknown backend %q (registered: %v): %w",
			name, names, core.ErrNotFound)
	}
	return f(), nil
}

// Coordinator is the TMaster-side checkpoint state machine. At most one
// checkpoint is outstanding; a pending checkpoint that cannot complete
// (e.g. a container died mid-barrier) is simply abandoned when the next
// interval begins — markers for a stale id are ignored downstream, so the
// protocol is self-healing without timeouts.
type Coordinator struct {
	topology string
	backend  Backend
	// ledger, when set, durably records the epoch sequence (see
	// UseLedger).
	ledger LedgerStore

	// CommitSink, when set, is invoked before the backend commit of a
	// completed checkpoint; an error aborts the commit. The replicated
	// control plane routes global commits through the control log here —
	// a fenced append means this coordinator's TMaster was deposed and
	// must not decide the epoch.
	CommitSink func(id int64) error

	mu      sync.Mutex
	next    int64
	pending int64          // 0 = no checkpoint outstanding
	waiting map[int32]bool // tasks not yet saved for pending
}

// LedgerStore persists the coordinator's prepare/commit ledger. The
// plain State Manager satisfies it; a replicated control plane wraps it
// with an adapter that appends a log record before the durable write.
type LedgerStore interface {
	SetCheckpointLedger(topology string, l *core.CheckpointLedger) error
	GetCheckpointLedger(topology string) (*core.CheckpointLedger, error)
}

// NewCoordinator creates a coordinator persisting through backend.
func NewCoordinator(topology string, backend Backend) *Coordinator {
	return &Coordinator{topology: topology, backend: backend, next: 1}
}

// UseLedger makes the coordinator persist a prepare/commit ledger through
// the State Manager on every epoch transition. Without it a TMaster
// restart mid-epoch forgets the in-flight epoch id: the backend only
// knows *committed* checkpoints, so the new coordinator would hand out
// latest+1 again — an id that transactional sinks may already hold a
// prepared (undecided) transaction for, conflating two different cuts of
// the stream under one epoch. The ledger keeps the id sequence strictly
// monotone across restarts.
func (c *Coordinator) UseLedger(sm LedgerStore) {
	c.mu.Lock()
	c.ledger = sm
	c.mu.Unlock()
}

// InitFromBackend resumes the id sequence after a restart: past the
// latest committed checkpoint AND past the persisted ledger's Next, so an
// id that was in flight (possibly prepared at sinks) when the previous
// coordinator died is never reused.
func (c *Coordinator) InitFromBackend() error {
	latest, err := c.backend.LatestCommitted(c.topology)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if latest >= c.next {
		c.next = latest + 1
	}
	if c.ledger != nil {
		led, err := c.ledger.GetCheckpointLedger(c.topology)
		if err == nil && led.Next > c.next {
			c.next = led.Next
		} else if err != nil && !errors.Is(err, core.ErrNotFound) {
			return err
		}
	}
	return nil
}

// persistLedgerLocked writes the current epoch sequence; caller holds
// c.mu. Persistence is best-effort: a State Manager hiccup must not stall
// the checkpoint pipeline, and losing one write only costs the crash
// window it would have covered.
func (c *Coordinator) persistLedgerLocked() {
	if c.ledger == nil {
		return
	}
	if err := c.ledger.SetCheckpointLedger(c.topology, &core.CheckpointLedger{
		Next: c.next, Pending: c.pending,
	}); err != nil {
		log.Printf("checkpoint[%s]: persist ledger: %v", c.topology, err)
	}
}

// Begin starts a new checkpoint over the given task set, abandoning any
// incomplete pending one. ok is false when tasks is empty.
func (c *Coordinator) Begin(tasks []int32) (id int64, ok bool) {
	if len(tasks) == 0 {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	id = c.next
	c.next++
	c.pending = id
	c.waiting = make(map[int32]bool, len(tasks))
	for _, t := range tasks {
		c.waiting[t] = true
	}
	c.persistLedgerLocked()
	return id, true
}

// Saved records one task's snapshot ack. When the last task of the
// pending checkpoint reports, the checkpoint is committed through the
// backend and complete is true. Stale or duplicate acks are ignored.
func (c *Coordinator) Saved(task int32, id int64) (complete bool, err error) {
	c.mu.Lock()
	if id != c.pending || !c.waiting[task] {
		c.mu.Unlock()
		return false, nil
	}
	delete(c.waiting, task)
	done := len(c.waiting) == 0
	if done {
		c.pending = 0
		c.persistLedgerLocked()
	}
	c.mu.Unlock()
	if !done {
		return false, nil
	}
	if sink := c.CommitSink; sink != nil {
		if err := sink(id); err != nil {
			return false, err
		}
	}
	if err := c.backend.Commit(c.topology, id); err != nil {
		return false, err
	}
	return true, nil
}

// Reserve allocates the next checkpoint id without starting a barrier.
// Runtime rescaling writes a repartitioned snapshot under a reserved id
// and commits it directly through the backend; reserving through the
// coordinator keeps the id sequence strictly monotone so instances never
// confuse the repartitioned epoch with an interval checkpoint.
func (c *Coordinator) Reserve() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.next
	c.next++
	c.persistLedgerLocked()
	return id
}

// InitFloor raises the id sequence to at least next. A promoted standby
// calls it with its replayed view's ledger floor so an epoch that was in
// flight under the dead leader — possibly prepared at transactional
// sinks — is abandoned, never reused for a different cut of the stream.
func (c *Coordinator) InitFloor(next int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if next > c.next {
		c.next = next
	}
}

// LatestCommitted reports the newest globally committed epoch from the
// backend (0 if none) — what a restarted coordinator re-broadcasts so
// sinks holding a prepared transaction for an already-committed epoch can
// resolve it.
func (c *Coordinator) LatestCommitted() (int64, error) {
	return c.backend.LatestCommitted(c.topology)
}

// Pending returns the outstanding checkpoint id (0 if none).
func (c *Coordinator) Pending() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pending
}
