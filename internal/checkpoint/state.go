package checkpoint

import (
	"fmt"
	"sort"

	"heron/internal/encoding/wire"
)

// MapState is the engine's api.State implementation: a plain string→bytes
// map handed to StatefulComponent.SaveState/RestoreState. It is not safe
// for concurrent use; the executor goroutine owns it for the duration of
// the call.
type MapState struct {
	m map[string][]byte
}

// NewMapState returns an empty state view.
func NewMapState() *MapState { return &MapState{m: map[string][]byte{}} }

// Set implements api.State.
func (s *MapState) Set(key string, value []byte) { s.m[key] = value }

// Get implements api.State.
func (s *MapState) Get(key string) []byte { return s.m[key] }

// Delete implements api.State.
func (s *MapState) Delete(key string) { delete(s.m, key) }

// Range implements api.State.
func (s *MapState) Range(fn func(key string, value []byte) bool) {
	for k, v := range s.m {
		if !fn(k, v) {
			return
		}
	}
}

// Len implements api.State.
func (s *MapState) Len() int { return len(s.m) }

// EncodeState serializes a MapState for a backend:
//
//	uvarint(pairs) pairs×(uvarint(len(key)) key uvarint(len(value)) value)
//
// Keys are written in sorted order so equal states encode identically.
func EncodeState(s *MapState) []byte {
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b := wire.AppendUvarint(nil, uint64(len(keys)))
	for _, k := range keys {
		b = wire.AppendUvarint(b, uint64(len(k)))
		b = append(b, k...)
		v := s.m[k]
		b = wire.AppendUvarint(b, uint64(len(v)))
		b = append(b, v...)
	}
	return b
}

// DecodeState parses an encoded snapshot. The returned state copies out of
// b, so the caller may recycle the buffer.
func DecodeState(b []byte) (*MapState, error) {
	pairs, n, err := wire.Uvarint(b)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: state header: %w", err)
	}
	b = b[n:]
	s := &MapState{m: make(map[string][]byte, pairs)}
	for i := uint64(0); i < pairs; i++ {
		kl, n, err := wire.Uvarint(b)
		if err != nil || uint64(len(b[n:])) < kl {
			return nil, fmt.Errorf("checkpoint: state key %d truncated", i)
		}
		b = b[n:]
		k := string(b[:kl])
		b = b[kl:]
		vl, n, err := wire.Uvarint(b)
		if err != nil || uint64(len(b[n:])) < vl {
			return nil, fmt.Errorf("checkpoint: state value %d truncated", i)
		}
		b = b[n:]
		s.m[k] = append([]byte(nil), b[:vl]...)
		b = b[vl:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes", len(b))
	}
	return s, nil
}
