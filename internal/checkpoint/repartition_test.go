package checkpoint

import (
	"errors"
	"fmt"
	"testing"

	"heron/api"
)

// saveCounts persists a word→count MapState as one task's snapshot.
func saveCounts(t *testing.T, b Backend, topo string, id int64, task int32, counts map[string]string) {
	t.Helper()
	st := NewMapState()
	for k, v := range counts {
		st.Set(k, []byte(v))
	}
	if err := b.Save(topo, id, task, EncodeState(st)); err != nil {
		t.Fatal(err)
	}
}

// loadCounts decodes one task's snapshot back into a map ("" if absent).
func loadCounts(t *testing.T, b Backend, topo string, id int64, task int32) map[string]string {
	t.Helper()
	raw, err := b.Load(topo, id, task)
	if err != nil {
		t.Fatal(err)
	}
	st, err := DecodeState(raw)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	st.Range(func(k string, v []byte) bool {
		out[k] = string(v)
		return true
	})
	return out
}

// TestRepartitionDefaultFollowsGroupingHash: the default bolt
// redistribution must place every key on the task the engine's
// fields-grouping hash routes it to post-rescale — nothing lost, nothing
// duplicated, and each key where its traffic will arrive.
func TestRepartitionDefaultFollowsGroupingHash(t *testing.T) {
	for _, to := range []int{1, 3, 5} { // shrink, grow, grow further
		t.Run(fmt.Sprintf("2to%d", to), func(t *testing.T) {
			b := newTestBackend(t, "memory")
			const topo = "repart"
			words := make([]string, 20)
			for i := range words {
				words[i] = fmt.Sprintf("w%02d", i)
			}
			// Old layout: 2 bolt tasks (10, 11) split by the same hash.
			old := map[int32]map[string]string{10: {}, 11: {}}
			for i, w := range words {
				task := int32(10 + KeyTaskIndex(w, 2))
				old[task][w] = fmt.Sprint(i)
			}
			for task, counts := range old {
				saveCounts(t, b, topo, 1, task, counts)
			}
			saveCounts(t, b, topo, 1, 0, map[string]string{"seq": "99"}) // untouched spout
			if err := b.Commit(topo, 1); err != nil {
				t.Fatal(err)
			}

			newTasks := make([]int32, to)
			for i := range newTasks {
				newTasks[i] = int32(20 + i)
			}
			err := Repartition(b, RepartitionPlan{
				Topology: topo, FromID: 1, ToID: 2,
				Component:  "count",
				OldTasks:   []int32{10, 11},
				NewTasks:   newTasks,
				OtherTasks: []int32{0},
			})
			if err != nil {
				t.Fatal(err)
			}
			if latest, err := b.LatestCommitted(topo); err != nil || latest != 2 {
				t.Fatalf("LatestCommitted = %d, %v, want 2", latest, err)
			}

			merged := map[string]string{}
			for i, task := range newTasks {
				got := loadCounts(t, b, topo, 2, task)
				for w, v := range got {
					if KeyTaskIndex(w, to) != i {
						t.Errorf("key %q on new task index %d, hash routes to %d", w, i, KeyTaskIndex(w, to))
					}
					if _, dup := merged[w]; dup {
						t.Errorf("key %q duplicated across new tasks", w)
					}
					merged[w] = v
				}
			}
			for i, w := range words {
				if merged[w] != fmt.Sprint(i) {
					t.Errorf("key %q = %q after repartition, want %q", w, merged[w], fmt.Sprint(i))
				}
			}
			// Other tasks copy verbatim.
			if got := loadCounts(t, b, topo, 2, 0); got["seq"] != "99" {
				t.Errorf("other task state = %v, want seq=99", got)
			}
		})
	}
}

// TestRepartitionSpoutIndexAligned: spout state is per-source-partition —
// it must stay aligned by component index, and indices dropped by a
// shrink are discarded with their partition.
func TestRepartitionSpoutIndexAligned(t *testing.T) {
	b := newTestBackend(t, "memory")
	const topo = "repart-spout"
	saveCounts(t, b, topo, 1, 10, map[string]string{"cursor": "100"})
	saveCounts(t, b, topo, 1, 11, map[string]string{"cursor": "200"})
	if err := b.Commit(topo, 1); err != nil {
		t.Fatal(err)
	}
	err := Repartition(b, RepartitionPlan{
		Topology: topo, FromID: 1, ToID: 2,
		Component: "word", Spout: true,
		OldTasks: []int32{10, 11},
		NewTasks: []int32{20}, // shrink 2 → 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := loadCounts(t, b, topo, 2, 20); got["cursor"] != "100" {
		t.Errorf("spout index 0 state = %v, want cursor=100", got)
	}
}

// TestRepartitionCustomHook: a component's api.StateRepartitioner
// overrides the default redistribution entirely.
type reverseRepartitioner struct{}

func (reverseRepartitioner) RepartitionState(old []api.State, fresh []api.State) error {
	for i, o := range old {
		dst := fresh[len(fresh)-1-i]
		o.Range(func(k string, v []byte) bool {
			dst.Set(k, v)
			return true
		})
	}
	return nil
}

func TestRepartitionCustomHook(t *testing.T) {
	b := newTestBackend(t, "memory")
	const topo = "repart-hook"
	saveCounts(t, b, topo, 1, 10, map[string]string{"a": "1"})
	saveCounts(t, b, topo, 1, 11, map[string]string{"b": "2"})
	if err := b.Commit(topo, 1); err != nil {
		t.Fatal(err)
	}
	err := Repartition(b, RepartitionPlan{
		Topology: topo, FromID: 1, ToID: 2,
		Component:     "count",
		OldTasks:      []int32{10, 11},
		NewTasks:      []int32{20, 21},
		Repartitioner: reverseRepartitioner{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := loadCounts(t, b, topo, 2, 20); got["b"] != "2" {
		t.Errorf("reversed task 20 state = %v, want b=2", got)
	}
	if got := loadCounts(t, b, topo, 2, 21); got["a"] != "1" {
		t.Errorf("reversed task 21 state = %v, want a=1", got)
	}
}

// TestRepartitionMissingTaskState: a task that saved nothing this epoch
// (stateless component in a mixed topology) contributes an empty state
// instead of failing the whole repartition.
func TestRepartitionMissingTaskState(t *testing.T) {
	b := newTestBackend(t, "memory")
	const topo = "repart-missing"
	saveCounts(t, b, topo, 1, 10, map[string]string{"x": "1"})
	// task 11 saved nothing
	if err := b.Commit(topo, 1); err != nil {
		t.Fatal(err)
	}
	err := Repartition(b, RepartitionPlan{
		Topology: topo, FromID: 1, ToID: 2,
		Component: "count",
		OldTasks:  []int32{10, 11},
		NewTasks:  []int32{20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := loadCounts(t, b, topo, 2, 20); got["x"] != "1" {
		t.Errorf("merged state = %v, want x=1", got)
	}
}

// TestRepartitionHookError: a failing component hook aborts before
// commit — the source checkpoint stays the latest committed.
type failingRepartitioner struct{}

func (failingRepartitioner) RepartitionState([]api.State, []api.State) error {
	return errors.New("boom")
}

func TestRepartitionHookError(t *testing.T) {
	b := newTestBackend(t, "memory")
	const topo = "repart-err"
	saveCounts(t, b, topo, 1, 10, map[string]string{"x": "1"})
	if err := b.Commit(topo, 1); err != nil {
		t.Fatal(err)
	}
	err := Repartition(b, RepartitionPlan{
		Topology: topo, FromID: 1, ToID: 2,
		Component:     "count",
		OldTasks:      []int32{10},
		NewTasks:      []int32{20},
		Repartitioner: failingRepartitioner{},
	})
	if err == nil {
		t.Fatal("Repartition succeeded with a failing hook")
	}
	if latest, _ := b.LatestCommitted(topo); latest != 1 {
		t.Fatalf("LatestCommitted = %d after failed repartition, want 1", latest)
	}
}

// TestCopyRollback: Copy re-persists a checkpoint's tasks verbatim under
// a new id and commits it — the rollback path of a failed rescale.
func TestCopyRollback(t *testing.T) {
	b := newTestBackend(t, "memory")
	const topo = "repart-copy"
	saveCounts(t, b, topo, 1, 10, map[string]string{"x": "1"})
	if err := b.Commit(topo, 1); err != nil {
		t.Fatal(err)
	}
	if err := Copy(b, topo, 1, 2, []int32{10, 11}); err != nil { // 11 stateless: skipped
		t.Fatal(err)
	}
	if latest, _ := b.LatestCommitted(topo); latest != 2 {
		t.Fatalf("LatestCommitted = %d after Copy, want 2", latest)
	}
	if got := loadCounts(t, b, topo, 2, 10); got["x"] != "1" {
		t.Errorf("copied state = %v, want x=1", got)
	}
}
