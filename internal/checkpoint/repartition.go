package checkpoint

import (
	"errors"
	"fmt"

	"heron/api"
	"heron/internal/core"
)

// RepartitionPlan describes how one component's checkpointed state moves
// to a new task set during a runtime rescale. Task ids of every other
// component are stable across a repack (minimal disruption), so their
// snapshots copy verbatim; only the rescaled component's state is
// redistributed.
type RepartitionPlan struct {
	Topology string
	// FromID is the committed checkpoint being repartitioned; ToID is the
	// reserved id the repartitioned snapshot commits under.
	FromID, ToID int64
	// Component is the rescaled component; Spout selects the default
	// redistribution (index-aligned for spouts, key-hash for bolts).
	Component string
	Spout     bool
	// OldTasks and NewTasks are the component's task ids in component-
	// index order, before and after the rescale.
	OldTasks, NewTasks []int32
	// OtherTasks are every other task of the proposed plan.
	OtherTasks []int32
	// Repartitioner overrides the default redistribution when the
	// component implements api.StateRepartitioner.
	Repartitioner api.StateRepartitioner
}

// Repartition builds checkpoint ToID from the committed checkpoint
// FromID: the rescaled component's per-task states are decoded,
// redistributed across the new task set, and re-encoded; every other
// task's snapshot is copied as-is. ToID is committed on success, becoming
// the checkpoint the quiesce-relaunched containers restore from.
func Repartition(b Backend, p RepartitionPlan) error {
	old := make([]api.State, len(p.OldTasks))
	for i, task := range p.OldTasks {
		raw, err := b.Load(p.Topology, p.FromID, task)
		switch {
		case errors.Is(err, core.ErrNotFound):
			old[i] = NewMapState() // task saved nothing this epoch
		case err != nil:
			return fmt.Errorf("checkpoint: repartition load task %d: %w", task, err)
		default:
			st, err := DecodeState(raw)
			if err != nil {
				return fmt.Errorf("checkpoint: repartition decode task %d: %w", task, err)
			}
			old[i] = st
		}
	}
	freshMaps := make([]*MapState, len(p.NewTasks))
	fresh := make([]api.State, len(p.NewTasks))
	for i := range fresh {
		freshMaps[i] = NewMapState()
		fresh[i] = freshMaps[i]
	}
	switch {
	case p.Repartitioner != nil:
		if err := p.Repartitioner.RepartitionState(old, fresh); err != nil {
			return fmt.Errorf("checkpoint: component %q repartitioner: %w", p.Component, err)
		}
	case p.Spout:
		// Spout state (cursors, offsets) is per-source-partition: keep it
		// aligned by component index; indices dropped by a shrink are
		// discarded with their partition.
		for i := range freshMaps {
			if i < len(old) {
				copyState(old[i], freshMaps[i])
			}
		}
	default:
		DefaultRepartition(old, freshMaps)
	}
	for i, task := range p.NewTasks {
		if err := b.Save(p.Topology, p.ToID, task, EncodeState(freshMaps[i])); err != nil {
			return fmt.Errorf("checkpoint: repartition save task %d: %w", task, err)
		}
	}
	if err := copyTasks(b, p.Topology, p.FromID, p.ToID, p.OtherTasks); err != nil {
		return err
	}
	return b.Commit(p.Topology, p.ToID)
}

// DefaultRepartition reassigns every key to the instance the engine's
// fields-grouping hash of the key routes to. For the common shape of bolt
// state — keyed by the single grouping field, like a word-count table —
// this places each key exactly where post-rescale traffic for it lands,
// with no component hook required.
func DefaultRepartition(old []api.State, fresh []*MapState) {
	n := len(fresh)
	for _, o := range old {
		o.Range(func(k string, v []byte) bool {
			fresh[KeyTaskIndex(k, n)].Set(k, append([]byte(nil), v...))
			return true
		})
	}
}

// KeyTaskIndex is the component index the engine's fields grouping sends
// a single-string-field tuple to at the given parallelism.
func KeyTaskIndex(key string, parallelism int) int {
	return int(core.HashFields([]any{key}, []int{0}) % uint64(parallelism))
}

// Copy re-persists the given tasks' snapshots of checkpoint fromID
// verbatim under toID and commits it — the rollback path of a failed
// rescale, after which LatestCommitted again describes the pre-rescale
// task set.
func Copy(b Backend, topology string, fromID, toID int64, tasks []int32) error {
	if err := copyTasks(b, topology, fromID, toID, tasks); err != nil {
		return err
	}
	return b.Commit(topology, toID)
}

// copyTasks copies task snapshots between checkpoint ids, skipping tasks
// that saved nothing (stateless components).
func copyTasks(b Backend, topology string, fromID, toID int64, tasks []int32) error {
	for _, task := range tasks {
		raw, err := b.Load(topology, fromID, task)
		if errors.Is(err, core.ErrNotFound) {
			continue
		}
		if err != nil {
			return fmt.Errorf("checkpoint: copy load task %d: %w", task, err)
		}
		if err := b.Save(topology, toID, task, raw); err != nil {
			return fmt.Errorf("checkpoint: copy save task %d: %w", task, err)
		}
	}
	return nil
}

// copyState copies every key of src into dst (values copied).
func copyState(src api.State, dst *MapState) {
	src.Range(func(k string, v []byte) bool {
		dst.Set(k, append([]byte(nil), v...))
		return true
	})
}
