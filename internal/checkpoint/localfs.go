package checkpoint

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"

	"heron/internal/core"
)

func init() {
	Register("localfs", func() Backend { return &localFSBackend{} })
}

// localFSBackend persists snapshots as files, following the statemgr
// localfs conventions: a root derived from Extra["checkpoint.root"] or a
// StateRoot-scoped directory under the system temp dir, and atomic writes
// via write-temp-then-rename.
//
// Layout:
//
//	<root>/<topology>/ckpt-<id>/task-<n>.snap
//	<root>/<topology>/latest        (decimal id of the newest commit)
type localFSBackend struct {
	root string
}

func (l *localFSBackend) Initialize(cfg *core.Config) error {
	root := cfg.Extra["checkpoint.root"]
	if root == "" {
		scope := filepath.Base(cfg.StateRoot)
		if scope == "" || scope == "." || scope == string(filepath.Separator) {
			scope = "heron"
		}
		root = filepath.Join(os.TempDir(), "heron-checkpoints", scope)
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return fmt.Errorf("checkpoint: localfs root: %w", err)
	}
	l.root = root
	return nil
}

func (l *localFSBackend) checkInit() error {
	if l.root == "" {
		return fmt.Errorf("checkpoint: localfs backend not initialized")
	}
	return nil
}

func (l *localFSBackend) ckptDir(topology string, id int64) string {
	return filepath.Join(l.root, topology, "ckpt-"+strconv.FormatInt(id, 10))
}

func (l *localFSBackend) snapPath(topology string, id int64, task int32) string {
	return filepath.Join(l.ckptDir(topology, id), "task-"+strconv.FormatInt(int64(task), 10)+".snap")
}

func (l *localFSBackend) latestPath(topology string) string {
	return filepath.Join(l.root, topology, "latest")
}

// writeAtomic writes data via a temp file and rename, so readers never
// observe a torn snapshot.
func writeAtomic(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func (l *localFSBackend) Save(topology string, checkpointID int64, task int32, data []byte) error {
	if err := l.checkInit(); err != nil {
		return err
	}
	return writeAtomic(l.snapPath(topology, checkpointID, task), data)
}

func (l *localFSBackend) Load(topology string, checkpointID int64, task int32) ([]byte, error) {
	if err := l.checkInit(); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(l.snapPath(topology, checkpointID, task))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, core.ErrNotFound
	}
	return data, err
}

func (l *localFSBackend) Commit(topology string, checkpointID int64) error {
	if err := l.checkInit(); err != nil {
		return err
	}
	latest, err := l.LatestCommitted(topology)
	if err != nil {
		return err
	}
	if checkpointID <= latest {
		return nil
	}
	if err := writeAtomic(l.latestPath(topology), []byte(strconv.FormatInt(checkpointID, 10))); err != nil {
		return err
	}
	// Retire superseded checkpoint directories.
	entries, err := os.ReadDir(filepath.Join(l.root, topology))
	if err != nil {
		return nil
	}
	for _, e := range entries {
		var old int64
		if _, err := fmt.Sscanf(e.Name(), "ckpt-%d", &old); err == nil && old < checkpointID {
			_ = os.RemoveAll(l.ckptDir(topology, old))
		}
	}
	return nil
}

func (l *localFSBackend) LatestCommitted(topology string) (int64, error) {
	if err := l.checkInit(); err != nil {
		return 0, err
	}
	raw, err := os.ReadFile(l.latestPath(topology))
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	id, err := strconv.ParseInt(string(raw), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: corrupt latest record: %w", err)
	}
	return id, nil
}

func (l *localFSBackend) Dispose(topology string) error {
	if err := l.checkInit(); err != nil {
		return err
	}
	return os.RemoveAll(filepath.Join(l.root, topology))
}

func (l *localFSBackend) Close() error {
	l.root = ""
	return nil
}
