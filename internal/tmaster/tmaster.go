// Package tmaster implements the Topology Master: the per-topology
// process (container 0) that manages the topology throughout its
// existence. It advertises its location through the State Manager as an
// ephemeral record (so every Stream Manager immediately observes its
// death), tracks Stream Manager registrations, distributes the physical
// plan, and aggregates the snapshots pushed by the Metrics Managers.
package tmaster

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"heron/internal/checkpoint"
	"heron/internal/core"
	"heron/internal/ctrl"
	"heron/internal/metrics"
	"heron/internal/network"
	"heron/internal/replication"
)

// Options configure one Topology Master.
type Options struct {
	Topology string
	Cfg      *core.Config
	// State is the TMaster's own State Manager session; closing the
	// TMaster closes the session and thereby deletes the ephemeral
	// location record.
	State core.StateManager
	// Lead, when set, runs this TMaster as one generation of a
	// replicated control plane (see leadership.go).
	Lead *Leadership
}

// TMaster is the topology controller.
type TMaster struct {
	opts     Options
	listener network.Listener

	mu      sync.Mutex
	epoch   int64
	stmgrs  map[int32]*stmgrEntry
	metrics map[int32]*metrics.Snapshot // latest snapshot per container
	ready   chan struct{}
	readyOK sync.Once

	// Checkpoint coordination (nil/zero when CheckpointInterval == 0).
	ckpt          *checkpoint.Coordinator
	ckptBackend   checkpoint.Backend
	ckptSuspended atomic.Bool
	commitWaiters []chan int64 // notified (non-blocking) on every commit

	// Replicated control plane (leadership.go): a fenced log append
	// proves a newer leader exists and deposes this generation.
	deposed    atomic.Bool
	deposeOnce sync.Once
	crashed    atomic.Bool

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

type stmgrEntry struct {
	addr string
	conn network.Conn
}

// New starts a Topology Master: it listens for Stream Manager
// registrations and advertises its location.
func New(opts Options) (*TMaster, error) {
	if opts.Cfg == nil || opts.State == nil {
		return nil, errors.New("tmaster: missing config or state manager")
	}
	tr, err := network.ByName(opts.Cfg.Transport)
	if err != nil {
		return nil, err
	}
	l, err := tr.Listen("")
	if err != nil {
		return nil, err
	}
	tm := &TMaster{
		opts:     opts,
		listener: l,
		stmgrs:   map[int32]*stmgrEntry{},
		metrics:  map[int32]*metrics.Snapshot{},
		ready:    make(chan struct{}),
		stopCh:   make(chan struct{}),
	}
	if opts.Cfg.CheckpointInterval > 0 {
		backend, err := checkpoint.New(opts.Cfg.StateBackend)
		if err != nil {
			l.Close()
			return nil, err
		}
		if err := backend.Initialize(opts.Cfg); err != nil {
			l.Close()
			return nil, err
		}
		tm.ckptBackend = backend
		tm.ckpt = checkpoint.NewCoordinator(opts.Topology, backend)
		// Persist the prepare/commit ledger through the State Manager, and
		// resume the id sequence past both the latest committed checkpoint
		// and the ledger's Next: a TMaster restarted mid-epoch must not
		// reuse the in-flight id (transactional sinks may already hold a
		// prepared transaction under it).
		tm.ckpt.UseLedger(opts.State)
		if err := tm.ckpt.InitFromBackend(); err != nil {
			l.Close()
			backend.Close()
			return nil, err
		}
		// Under a replicated control plane, reroute the ledger through the
		// control log and recover the dead leader's state from the
		// replayed view.
		if err := tm.initLeadership(); err != nil {
			l.Close()
			backend.Close()
			return nil, err
		}
		tm.wg.Add(1)
		go tm.checkpointLoop()
	}
	tm.wg.Add(1)
	go tm.acceptLoop()
	loc := core.TMasterLocation{
		Topology:  opts.Topology,
		Transport: opts.Cfg.Transport,
		Addr:      l.Addr(),
		SessionID: time.Now().UnixNano(),
	}
	if err := opts.State.SetTMasterLocation(loc); err != nil {
		tm.Stop()
		return nil, err
	}
	return tm, nil
}

// Addr returns the control listener's address.
func (tm *TMaster) Addr() string { return tm.listener.Addr() }

func (tm *TMaster) acceptLoop() {
	defer tm.wg.Done()
	for {
		conn, err := tm.listener.Accept()
		if err != nil {
			return
		}
		c := conn
		c.Start(func(kind network.MsgKind, payload []byte) {
			if kind != network.MsgControl {
				return
			}
			m, err := ctrl.Decode(payload)
			if err != nil {
				return
			}
			switch m.Op {
			case ctrl.OpRegisterStmgr:
				tm.register(m.Container, m.DataAddr, c)
			case ctrl.OpRefresh:
				tm.Refresh()
			case ctrl.OpMetrics:
				if m.Metrics != nil {
					tm.mu.Lock()
					tm.metrics[m.Container] = m.Metrics
					tm.mu.Unlock()
				}
			case ctrl.OpCheckpointSaved:
				tm.checkpointSaved(m.TaskID, m.CheckpointID)
			}
		})
	}
}

// register records a Stream Manager and rebroadcasts the plan once every
// expected container is present (and on every re-registration, so
// restarted containers propagate their new addresses to all peers).
func (tm *TMaster) register(container int32, addr string, conn network.Conn) {
	tm.mu.Lock()
	if old := tm.stmgrs[container]; old != nil && old.conn != conn {
		old.conn.Close()
	}
	tm.stmgrs[container] = &stmgrEntry{addr: addr, conn: conn}
	tm.mu.Unlock()
	tm.broadcastIfComplete()
}

// Refresh re-reads the topology state and rebroadcasts (used after
// scaling updates).
func (tm *TMaster) Refresh() { tm.broadcastIfComplete() }

// broadcastIfComplete pushes the current plan to every registered Stream
// Manager when all containers of the packing plan have registered.
func (tm *TMaster) broadcastIfComplete() {
	if tm.isDeposed() {
		return
	}
	topo, err := tm.opts.State.GetTopology(tm.opts.Topology)
	if err != nil {
		return
	}
	packing, err := tm.opts.State.GetPackingPlan(tm.opts.Topology)
	if err != nil {
		return
	}
	tm.mu.Lock()
	for i := range packing.Containers {
		if _, ok := tm.stmgrs[packing.Containers[i].ID]; !ok {
			tm.mu.Unlock()
			return // still waiting for a container
		}
	}
	tm.epoch++
	payload := &ctrl.PlanPayload{
		Epoch:    tm.epoch,
		Term:     tm.term(),
		Topology: topo,
		Packing:  packing,
		Stmgrs:   map[int32]string{},
	}
	// Only advertise containers in the current plan (stale registrations
	// from removed containers are dropped from the directory).
	valid := map[int32]bool{}
	for i := range packing.Containers {
		valid[packing.Containers[i].ID] = true
	}
	conns := make([]network.Conn, 0, len(tm.stmgrs))
	for c, e := range tm.stmgrs {
		if valid[c] {
			payload.Stmgrs[c] = e.addr
			conns = append(conns, e.conn)
		}
	}
	// Drop metric snapshots of containers no longer in the plan (scale
	// down), so the merged view never reports tasks that ceased to exist.
	for c := range tm.metrics {
		if !valid[c] {
			delete(tm.metrics, c)
		}
	}
	tm.mu.Unlock()

	// Write-ahead: the plan change is logged before any Stream Manager
	// sees it, so a fenced-out leader cannot push a broadcast a newer
	// generation's replicas never observed.
	nTasks := 0
	for i := range packing.Containers {
		nTasks += len(packing.Containers[i].Instances)
	}
	if err := tm.AppendControl(&replication.Record{
		Kind: replication.KindPlan,
		Plan: &replication.PlanRecord{
			Epoch: payload.Epoch, Containers: len(packing.Containers), Tasks: nTasks,
		},
	}); err != nil {
		return
	}

	raw, err := ctrl.Encode(&ctrl.Message{Op: ctrl.OpPlan, Topology: tm.opts.Topology, Plan: payload})
	if err != nil {
		return
	}
	for _, c := range conns {
		_ = c.Send(network.MsgControl, raw)
	}
	// Re-advertise the newest committed epoch with every complete plan
	// broadcast. Commit notifications are fire-and-forget; if the previous
	// TMaster died between backend.Commit and the broadcast (or a container
	// relaunched without a restore), transactional sinks would sit on a
	// prepared transaction for an epoch that already won. The notification
	// is an idempotent high-water mark, so repeating it is free.
	if tm.ckpt != nil {
		if latest, err := tm.ckpt.LatestCommitted(); err == nil && latest > 0 {
			tm.broadcastCtrl(&ctrl.Message{
				Op: ctrl.OpCheckpointCommitted, Topology: tm.opts.Topology, CheckpointID: latest,
			})
		}
	}
	tm.readyOK.Do(func() { close(tm.ready) })
}

// Ready is closed after the first complete plan broadcast: the topology
// is fully wired.
func (tm *TMaster) Ready() <-chan struct{} { return tm.ready }

// MetricsSnapshots returns the latest typed snapshot pushed by each
// container's Metrics Manager.
func (tm *TMaster) MetricsSnapshots() map[int32]*metrics.Snapshot {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	out := make(map[int32]*metrics.Snapshot, len(tm.metrics))
	for c, m := range tm.metrics {
		out[c] = m
	}
	return out
}

// MetricsView merges the containers' latest snapshots into the
// topology-wide typed view with per-component quantile summaries — the
// aggregation behind heron.Handle.Metrics() and the HTTP endpoints.
func (tm *TMaster) MetricsView() *metrics.TopologyView {
	tm.mu.Lock()
	snaps := make([]*metrics.Snapshot, 0, len(tm.metrics))
	for _, m := range tm.metrics {
		snaps = append(snaps, m)
	}
	tm.mu.Unlock()
	return metrics.MergeSnapshots(snaps...)
}

// Tune broadcasts a max-spout-pending adjustment to every registered
// stream manager, which relays it to its local spout instances — the
// runtime path behind observation-driven parameter tuning.
func (tm *TMaster) Tune(maxSpoutPending int) {
	if err := tm.AppendControl(&replication.Record{
		Kind: replication.KindTune, Value: int64(maxSpoutPending),
	}); err != nil {
		return
	}
	raw, err := ctrl.Encode(&ctrl.Message{
		Op: ctrl.OpTune, Topology: tm.opts.Topology, MaxSpoutPending: maxSpoutPending,
	})
	if err != nil {
		return
	}
	tm.mu.Lock()
	conns := make([]network.Conn, 0, len(tm.stmgrs))
	for _, e := range tm.stmgrs {
		conns = append(conns, e.conn)
	}
	tm.mu.Unlock()
	for _, c := range conns {
		_ = c.Send(network.MsgControl, raw)
	}
}

// broadcastCtrl sends one control message to every registered stream
// manager.
func (tm *TMaster) broadcastCtrl(m *ctrl.Message) {
	raw, err := ctrl.Encode(m)
	if err != nil {
		return
	}
	tm.mu.Lock()
	conns := make([]network.Conn, 0, len(tm.stmgrs))
	for _, e := range tm.stmgrs {
		conns = append(conns, e.conn)
	}
	tm.mu.Unlock()
	for _, c := range conns {
		_ = c.Send(network.MsgControl, raw)
	}
}

// checkpointLoop drives the coordinator: once the topology is wired, it
// begins a checkpoint every CheckpointInterval by broadcasting a trigger.
// An incomplete checkpoint (e.g. a container died mid-barrier) is simply
// superseded by the next Begin — no timeout machinery.
func (tm *TMaster) checkpointLoop() {
	defer tm.wg.Done()
	select {
	case <-tm.ready:
	case <-tm.stopCh:
		return
	}
	t := time.NewTicker(tm.opts.Cfg.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-tm.stopCh:
			return
		case <-t.C:
			if !tm.ckptSuspended.Load() {
				tm.triggerCheckpoint()
			}
		}
	}
}

// triggerCheckpoint begins one checkpoint over every task of the current
// packing plan.
func (tm *TMaster) triggerCheckpoint() (int64, bool) {
	if tm.isDeposed() {
		return 0, false
	}
	packing, err := tm.opts.State.GetPackingPlan(tm.opts.Topology)
	if err != nil {
		return 0, false
	}
	var tasks []int32
	for i := range packing.Containers {
		for _, inst := range packing.Containers[i].Instances {
			tasks = append(tasks, inst.ID.TaskID)
		}
	}
	id, ok := tm.ckpt.Begin(tasks)
	if !ok {
		return 0, false
	}
	// Begin's ledger write routes through the control log; a fenced
	// append deposed us synchronously — never broadcast the trigger.
	if tm.isDeposed() {
		return 0, false
	}
	tm.broadcastCtrl(&ctrl.Message{
		Op: ctrl.OpCheckpointTrigger, Topology: tm.opts.Topology, CheckpointID: id,
	})
	return id, true
}

// SuspendCheckpoints pauses interval-triggered checkpoints. The rescale
// protocol owns the checkpoint sequence while it runs: an interval
// barrier racing the repartitioned snapshot could commit a checkpoint of
// the old task set after the new one, which relaunched containers would
// then restore. Explicit CheckpointNow triggers still work.
func (tm *TMaster) SuspendCheckpoints() { tm.ckptSuspended.Store(true) }

// ResumeCheckpoints re-enables interval-triggered checkpoints.
func (tm *TMaster) ResumeCheckpoints() { tm.ckptSuspended.Store(false) }

// CheckpointNow synchronously runs one full checkpoint: it triggers a
// barrier over the current plan and blocks until a checkpoint at least as
// new commits, returning the committed id. It works while interval
// checkpoints are suspended — that is exactly how the rescale protocol
// captures the topology's state before repartitioning it.
func (tm *TMaster) CheckpointNow(timeout time.Duration) (int64, error) {
	if tm.ckpt == nil {
		return 0, errors.New("tmaster: checkpointing disabled")
	}
	if tm.isDeposed() {
		return 0, tm.errNotLeader()
	}
	ch := make(chan int64, 4)
	tm.mu.Lock()
	tm.commitWaiters = append(tm.commitWaiters, ch)
	tm.mu.Unlock()
	defer tm.dropWaiter(ch)
	id, ok := tm.triggerCheckpoint()
	if !ok {
		return 0, errors.New("tmaster: cannot trigger checkpoint (no plan or no tasks)")
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		select {
		case got := <-ch:
			if got >= id {
				return got, nil
			}
		case <-deadline.C:
			return 0, fmt.Errorf("tmaster: checkpoint %d did not commit within %v", id, timeout)
		case <-tm.stopCh:
			return 0, errors.New("tmaster: stopped")
		}
	}
}

func (tm *TMaster) dropWaiter(ch chan int64) {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	for i, w := range tm.commitWaiters {
		if w == ch {
			tm.commitWaiters = append(tm.commitWaiters[:i], tm.commitWaiters[i+1:]...)
			return
		}
	}
}

// ReserveCheckpointID hands out the next checkpoint id for an externally
// built snapshot — the rescale protocol's repartitioned checkpoint.
func (tm *TMaster) ReserveCheckpointID() (int64, error) {
	if tm.ckpt == nil {
		return 0, errors.New("tmaster: checkpointing disabled")
	}
	if tm.isDeposed() {
		return 0, tm.errNotLeader()
	}
	id := tm.ckpt.Reserve()
	// Reserve's ledger write routes through the control log; if the
	// append was fenced we were deposed synchronously — the id must not
	// reach the caller (a new leader may hand it out for a different
	// epoch).
	if tm.isDeposed() {
		return 0, tm.errNotLeader()
	}
	return id, nil
}

// checkpointSaved records one task's snapshot ack; when the barrier set
// completes, the checkpoint commits and every container learns the new
// restorable epoch.
func (tm *TMaster) checkpointSaved(task int32, id int64) {
	if tm.ckpt == nil {
		return
	}
	complete, err := tm.ckpt.Saved(task, id)
	if err != nil {
		log.Printf("tmaster[%s]: commit checkpoint %d: %v", tm.opts.Topology, id, err)
		return
	}
	if complete {
		tm.broadcastCtrl(&ctrl.Message{
			Op: ctrl.OpCheckpointCommitted, Topology: tm.opts.Topology, CheckpointID: id,
		})
		tm.mu.Lock()
		waiters := append([]chan int64(nil), tm.commitWaiters...)
		tm.mu.Unlock()
		for _, w := range waiters {
			select {
			case w <- id:
			default:
			}
		}
	}
}

// Stmgrs returns the registered container → address directory.
func (tm *TMaster) Stmgrs() map[int32]string {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	out := make(map[int32]string, len(tm.stmgrs))
	for c, e := range tm.stmgrs {
		out[c] = e.addr
	}
	return out
}

// Stop closes the listener, every registration connection, and the State
// Manager session (deleting the ephemeral location record — the paper's
// TMaster-death signal).
func (tm *TMaster) Stop() {
	tm.stopOnce.Do(func() {
		close(tm.stopCh)
		tm.listener.Close()
		tm.mu.Lock()
		for _, e := range tm.stmgrs {
			e.conn.Close()
		}
		tm.stmgrs = map[int32]*stmgrEntry{}
		tm.mu.Unlock()
		tm.wg.Wait()
		if tm.ckptBackend != nil {
			_ = tm.ckptBackend.Close()
		}
		if tm.crashed.Load() {
			// Hard kill: leave the session hanging so ephemerals and the
			// leader lease lapse by TTL instead of vanishing instantly.
			if a, ok := tm.opts.State.(interface{ Abandon() }); ok {
				a.Abandon()
				return
			}
		}
		_ = tm.opts.State.Close()
	})
}
