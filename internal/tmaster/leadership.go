// This file wires a TMaster into the replicated control plane: every
// control-plane mutation is appended to the control log before it takes
// effect, and a fenced append (core.ErrNotLeader) deposes this TMaster —
// it stops mutating and signals its replica to tear it down.

package tmaster

import (
	"errors"
	"fmt"

	"heron/internal/core"
	"heron/internal/replication"
)

// Leadership is the replicated-control-plane context a replica hands to
// the TMaster it promotes. Nil Leadership (the default) runs the
// original single-TMaster control plane: no log, term 0.
type Leadership struct {
	// Term is this TMaster generation's fencing term.
	Term int64
	// Log is the topology's control log, already fenced at Term.
	Log *replication.Log
	// Recovered is the promoting replica's replayed view — the dead
	// leader's last effective control state.
	Recovered *replication.View
	// OnDeposed is invoked (once, possibly from a coordinator callback —
	// it must not block) when a log append is fenced out by a higher
	// term: the replica tears this TMaster down and rejoins as standby.
	OnDeposed func()
}

// term returns the fencing term (0 when unreplicated).
func (tm *TMaster) term() int64 {
	if tm.opts.Lead == nil {
		return 0
	}
	return tm.opts.Lead.Term
}

// isDeposed reports whether a fenced append has already proven a newer
// leader exists.
func (tm *TMaster) isDeposed() bool { return tm.deposed.Load() }

// depose marks the TMaster fenced-out and notifies the replica exactly
// once. Safe to call from under the coordinator's lock: the callback is
// contractually non-blocking (the replica's depose just closes a
// channel; teardown happens on the replica's own goroutine).
func (tm *TMaster) depose() {
	tm.deposeOnce.Do(func() {
		tm.deposed.Store(true)
		if tm.opts.Lead != nil && tm.opts.Lead.OnDeposed != nil {
			tm.opts.Lead.OnDeposed()
		}
	})
}

// errNotLeader builds the sentinel error surfaced by control APIs after
// this TMaster generation was fenced out.
func (tm *TMaster) errNotLeader() error {
	return fmt.Errorf("%w: tmaster term %d deposed", core.ErrNotLeader, tm.term())
}

// AppendControl writes rec through the control log before its mutation
// takes effect. With an unreplicated control plane it is a no-op. A
// core.ErrNotLeader return means this TMaster was fenced out — the
// caller must not apply the mutation.
func (tm *TMaster) AppendControl(rec *replication.Record) error {
	if tm.opts.Lead == nil {
		return nil
	}
	if tm.isDeposed() {
		return tm.errNotLeader()
	}
	if err := tm.opts.Lead.Log.Append(rec); err != nil {
		if errors.Is(err, core.ErrNotLeader) {
			tm.depose()
		}
		return err
	}
	return nil
}

// logLedger routes the checkpoint coordinator's ledger writes through
// the control log: the ledger transition is ordered and fenced before
// the durable State Manager write, so a deposed leader cannot move the
// epoch sequence after a successor took over.
type logLedger struct{ tm *TMaster }

func (ll logLedger) SetCheckpointLedger(topology string, l *core.CheckpointLedger) error {
	cp := *l
	if err := ll.tm.AppendControl(&replication.Record{
		Kind: replication.KindLedger, Ledger: &cp,
	}); err != nil {
		return err
	}
	return ll.tm.opts.State.SetCheckpointLedger(topology, l)
}

func (ll logLedger) GetCheckpointLedger(topology string) (*core.CheckpointLedger, error) {
	return ll.tm.opts.State.GetCheckpointLedger(topology)
}

// initLeadership hooks the coordinator into the log and recovers the
// dead leader's control state from the replayed view. Called from New
// after the coordinator exists but before any loop starts.
func (tm *TMaster) initLeadership() error {
	lead := tm.opts.Lead
	if lead == nil || tm.ckpt == nil {
		return nil
	}
	tm.ckpt.UseLedger(logLedger{tm})
	tm.ckpt.CommitSink = func(id int64) error {
		return tm.AppendControl(&replication.Record{Kind: replication.KindCommit, Value: id})
	}
	if v := lead.Recovered; v != nil {
		// Never reuse an epoch id the dead leader had in flight: ids below
		// the replayed ledger floor may be sitting prepared (undecided) at
		// transactional sinks.
		tm.ckpt.InitFloor(v.Ledger.Next)
		// Re-drive a commit the log decided but the backend never heard
		// finished (the old leader died between the log append and the
		// backend commit). Idempotent: commit is a high-water mark.
		if latest, err := tm.ckptBackend.LatestCommitted(tm.opts.Topology); err == nil && v.LastCommit > latest {
			if err := tm.ckptBackend.Commit(tm.opts.Topology, v.LastCommit); err != nil {
				return fmt.Errorf("tmaster: re-drive commit %d: %w", v.LastCommit, err)
			}
		}
	}
	return nil
}

// LatestCommittedEpoch reports the newest globally committed checkpoint
// (0 when checkpointing is disabled or nothing committed) — the failover
// harness polls it to time kill→first-post-failover-commit.
func (tm *TMaster) LatestCommittedEpoch() int64 {
	if tm.ckpt == nil {
		return 0
	}
	latest, err := tm.ckpt.LatestCommitted()
	if err != nil {
		return 0
	}
	return latest
}

// Crash simulates the TMaster process dying: everything stops, but the
// State Manager session is abandoned rather than closed — ephemeral
// records and the leader lease linger until their TTLs lapse, exactly
// what a kill -9 looks like to the rest of the cluster.
func (tm *TMaster) Crash() {
	tm.crashed.Store(true)
	tm.Stop()
}
