package tmaster

import (
	"testing"
	"time"

	"heron/internal/core"
	"heron/internal/ctrl"
	"heron/internal/metrics"
	"heron/internal/network"
	"heron/internal/statemgr"
)

func testState(t *testing.T, cfg *core.Config) core.StateManager {
	t.Helper()
	sm, err := core.NewStateManager("memory")
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.Initialize(cfg); err != nil {
		t.Fatal(err)
	}
	return sm
}

func seedState(t *testing.T, sm core.StateManager, containers ...int32) {
	t.Helper()
	topo := &core.Topology{Name: "t", Components: []core.ComponentSpec{
		{Name: "s", Kind: core.KindSpout, Parallelism: len(containers),
			Outputs: map[string][]string{"default": {"x"}}},
	}}
	plan := &core.PackingPlan{Topology: "t"}
	for i, c := range containers {
		plan.Containers = append(plan.Containers, core.ContainerPlan{
			ID: c, Required: core.Resource{CPU: 2, RAMMB: 256, DiskMB: 256},
			Instances: []core.InstancePlacement{{
				ID:        core.InstanceID{Component: "s", ComponentIndex: int32(i), TaskID: int32(i)},
				Resources: core.Resource{CPU: 1, RAMMB: 128, DiskMB: 128},
			}},
		})
	}
	if err := sm.SetTopology(topo); err != nil {
		t.Fatal(err)
	}
	if err := sm.SetPackingPlan("t", plan); err != nil {
		t.Fatal(err)
	}
}

// fakeStmgr registers with the TMaster and records plan broadcasts.
type fakeStmgr struct {
	conn  network.Conn
	plans chan *ctrl.PlanPayload
}

func connectStmgr(t *testing.T, tm *TMaster, container int32, addr string) *fakeStmgr {
	t.Helper()
	conn, err := (network.InprocTransport{}).Dial(tm.Addr())
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeStmgr{conn: conn, plans: make(chan *ctrl.PlanPayload, 16)}
	conn.Start(func(kind network.MsgKind, payload []byte) {
		if kind != network.MsgControl {
			return
		}
		if m, err := ctrl.Decode(payload); err == nil && m.Op == ctrl.OpPlan {
			f.plans <- m.Plan
		}
	})
	reg, _ := ctrl.Encode(&ctrl.Message{
		Op: ctrl.OpRegisterStmgr, Topology: "t", Container: container, DataAddr: addr,
	})
	if err := conn.Send(network.MsgControl, reg); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return f
}

func newTM(t *testing.T) (*TMaster, core.StateManager, *core.Config) {
	t.Helper()
	cfg := core.NewConfig()
	cfg.StateRoot = "/tm-" + t.Name()
	statemgr.ResetSharedStore(cfg.StateRoot)
	seeder := testState(t, cfg)
	seedState(t, seeder, 1, 2)
	tm, err := New(Options{Topology: "t", Cfg: cfg, State: testState(t, cfg)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tm.Stop)
	t.Cleanup(func() { seeder.Close() })
	return tm, seeder, cfg
}

func TestAdvertisesEphemeralLocation(t *testing.T) {
	tm, seeder, _ := newTM(t)
	loc, err := seeder.GetTMasterLocation("t")
	if err != nil {
		t.Fatal(err)
	}
	if loc.Addr != tm.Addr() || loc.Transport != "inproc" {
		t.Errorf("location = %+v", loc)
	}
	tm.Stop()
	if _, err := seeder.GetTMasterLocation("t"); err == nil {
		t.Error("location survived TMaster stop (should be ephemeral)")
	}
}

func TestBroadcastWaitsForAllContainers(t *testing.T) {
	tm, _, _ := newTM(t)
	s1 := connectStmgr(t, tm, 1, "addr-1")
	select {
	case <-s1.plans:
		t.Fatal("plan broadcast before all containers registered")
	case <-time.After(100 * time.Millisecond):
	}
	s2 := connectStmgr(t, tm, 2, "addr-2")
	for _, s := range []*fakeStmgr{s1, s2} {
		select {
		case p := <-s.plans:
			if p.Stmgrs[1] != "addr-1" || p.Stmgrs[2] != "addr-2" {
				t.Errorf("directory = %v", p.Stmgrs)
			}
			if p.Epoch < 1 {
				t.Errorf("epoch = %d", p.Epoch)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("no broadcast after all containers registered")
		}
	}
	select {
	case <-tm.Ready():
	default:
		t.Error("Ready not closed")
	}
	if got := tm.Stmgrs(); got[1] != "addr-1" || got[2] != "addr-2" {
		t.Errorf("Stmgrs = %v", got)
	}
}

func TestReregistrationRebroadcastsNewAddress(t *testing.T) {
	tm, _, _ := newTM(t)
	s1 := connectStmgr(t, tm, 1, "addr-1")
	connectStmgr(t, tm, 2, "addr-2")
	<-s1.plans // initial broadcast

	// Container 2 restarts with a new address.
	connectStmgr(t, tm, 2, "addr-2b")
	select {
	case p := <-s1.plans:
		if p.Stmgrs[2] != "addr-2b" {
			t.Errorf("directory after restart = %v", p.Stmgrs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no rebroadcast after re-registration")
	}
}

func TestRefreshAfterScaling(t *testing.T) {
	tm, seeder, _ := newTM(t)
	s1 := connectStmgr(t, tm, 1, "addr-1")
	connectStmgr(t, tm, 2, "addr-2")
	p := <-s1.plans
	if len(p.Packing.Containers) != 2 {
		t.Fatalf("containers = %d", len(p.Packing.Containers))
	}
	// Scale: new packing plan with an extra instance in container 1.
	plan, err := seeder.GetPackingPlan("t")
	if err != nil {
		t.Fatal(err)
	}
	topo, _ := seeder.GetTopology("t")
	topo.Components[0].Parallelism = 3
	plan.Containers[0].Instances = append(plan.Containers[0].Instances, core.InstancePlacement{
		ID:        core.InstanceID{Component: "s", ComponentIndex: 2, TaskID: 2},
		Resources: core.Resource{CPU: 1, RAMMB: 128, DiskMB: 128},
	})
	plan.Containers[0].Required = core.Resource{CPU: 3, RAMMB: 384, DiskMB: 384}
	if err := seeder.SetTopology(topo); err != nil {
		t.Fatal(err)
	}
	if err := seeder.SetPackingPlan("t", plan); err != nil {
		t.Fatal(err)
	}
	tm.Refresh()
	select {
	case p := <-s1.plans:
		if p.Packing.NumInstances() != 3 {
			t.Errorf("instances after refresh = %d", p.Packing.NumInstances())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no broadcast after refresh")
	}
}

func TestMetricsCollection(t *testing.T) {
	tm, _, _ := newTM(t)
	s1 := connectStmgr(t, tm, 1, "addr-1")
	snap := &metrics.Snapshot{
		Container: 1, TakenAtUnixNs: 42,
		Counters: []metrics.CounterPoint{{
			ID:    metrics.ID{Name: metrics.MExecuteCount, Tags: metrics.Tags{Component: "s", Task: 0}},
			Value: 7,
		}},
	}
	msg, _ := ctrl.Encode(&ctrl.Message{Op: ctrl.OpMetrics, Topology: "t", Container: 1, Metrics: snap})
	if err := s1.conn.Send(network.MsgControl, msg); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		got := tm.MetricsSnapshots()
		if len(got) == 1 && got[1] != nil && len(got[1].Counters) == 1 && got[1].Counters[0].Value == 7 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics = %v", got)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := tm.MetricsView().Counter(metrics.MExecuteCount, "s"); n != 7 {
		t.Errorf("merged view execute-count = %d, want 7", n)
	}
}

func TestNewRejectsMissingDeps(t *testing.T) {
	if _, err := New(Options{Topology: "t"}); err == nil {
		t.Error("missing state accepted")
	}
}
