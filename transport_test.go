package heron

import (
	"testing"
	"time"
)

// TestWordCountOverTCP runs the full engine with real sockets: every
// instance↔stream-manager and stream-manager↔stream-manager hop crosses
// loopback TCP, proving the transport module is genuinely pluggable.
func TestWordCountOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp end-to-end")
	}
	var f fixture
	spec := f.buildWordCount(t, 2, 2, 300, true)
	cfg := testConfig(t)
	cfg.Transport = "tcp"
	cfg.AckingEnabled = true
	cfg.MaxSpoutPending = 50
	cfg.MessageTimeout = 10 * time.Second

	h, err := Submit(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Kill()
	if err := h.WaitRunning(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 120*time.Second, "all tuples acked over tcp", func() bool {
		return f.acked.Load() >= 2*300
	})
	f.table.mu.Lock()
	defer f.table.mu.Unlock()
	for word, tasks := range f.table.counts {
		if len(tasks) != 1 {
			t.Errorf("word %q on %d tasks", word, len(tasks))
		}
	}
}

// TestWordCountWithLocalFSStateManager swaps the coordination store for
// the filesystem implementation: TMaster discovery and plan storage run
// through files and poll-based watches.
func TestWordCountWithLocalFSStateManager(t *testing.T) {
	if testing.Short() {
		t.Skip("localfs end-to-end")
	}
	var f fixture
	spec := f.buildWordCount(t, 2, 2, 500, false)
	cfg := testConfig(t)
	cfg.StateManagerName = "localfs"
	cfg.Extra["localfs.root"] = t.TempDir()

	h, err := Submit(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Kill()
	if err := h.WaitRunning(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 120*time.Second, "all tuples counted via localfs", func() bool {
		return f.table.total.Load() >= 2*500
	})
}

// TestBinPackingSchedulerEndToEnd runs the engine under the bin-packing
// resource manager and checks the cost-optimized plan actually runs.
func TestBinPackingSchedulerEndToEnd(t *testing.T) {
	var f fixture
	spec := f.buildWordCount(t, 2, 3, 500, false)
	cfg := testConfig(t)
	cfg.PackingAlgorithm = "binpacking"

	h, err := Submit(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Kill()
	if err := h.WaitRunning(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	plan, err := h.PackingPlan()
	if err != nil {
		t.Fatal(err)
	}
	// 5 one-core instances fit one default-capacity container.
	if len(plan.Containers) != 1 {
		t.Errorf("binpacking used %d containers, want 1", len(plan.Containers))
	}
	waitFor(t, 120*time.Second, "tuples counted", func() bool {
		return f.table.total.Load() >= 2*500
	})
}
