package heron

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"heron/api"
	"heron/internal/checkpoint"
	"heron/internal/cluster"
	"heron/internal/core"
	"heron/internal/extsvc/kafkasim"
	"heron/internal/harness/audit"
	"heron/internal/metrics"
	"heron/internal/statemgr"
	"heron/internal/workloads"
)

// End-to-end exactly-once certification: a KafkaSpout reads a preloaded
// source broker through a consumer group, a KafkaSink copies every record
// into a second broker under barrier-driven two-phase commit, and the
// test kills a worker container inside a chosen failure window. After
// recovery drains, the sink broker's *committed* record set must equal
// the preloaded multiset exactly — zero duplicates, zero loss — no
// matter which window the kill landed in or which checkpoint backend
// held the epoch.

// txnWindow selects where in the two-phase timeline the kill lands.
type txnWindow int

const (
	// windowMidEpoch kills with data in flight, between barriers.
	windowMidEpoch txnWindow = iota
	// windowPrepare kills after the sink's transaction is prepared at the
	// broker but before the epoch ever globally commits (the sink's
	// saved-ack is dropped, so the epoch cannot complete).
	windowPrepare
	// windowCommit kills after the epoch globally commits in the backend
	// but before the sink applies the commit notification.
	windowCommit
	// windowRestore kills a second time while the first recovery is still
	// resolving pending transactions.
	windowRestore
)

// trap codes for the shared hook state (0 = production path).
const (
	trapOff int32 = iota
	trapPrepare
	trapCommit
	trapRecover
)

func runTxnExactlyOnce(t *testing.T, backendName, label string, shards int, ring bool, window txnWindow) {
	nPer := 256
	if audit.RaceEnabled() {
		nPer = 96 // small-N variant: same windows, less data under -race
	}
	src := kafkasim.NewBroker(4)
	expected := audit.PreloadUnique(src, nPer)
	total := 4 * nPer
	sink := kafkasim.NewBroker(4)
	stats := &workloads.KafkaStats{}
	group := "grp-" + label

	// The chaos lever: when armed, the matching hook reports a failure,
	// which the protocol treats exactly like a crash at that point. The
	// trapped channel tells the test the pipeline has entered the window.
	var trap atomic.Int32
	trapped := make(chan int64, 16)
	signal := func(e int64) {
		select {
		case trapped <- e:
		default:
		}
	}
	hooks := &workloads.TxnHooks{
		OnPrepared: func(epoch int64) error {
			if trap.Load() == trapPrepare {
				signal(epoch)
				return fmt.Errorf("chaos: dropping saved-ack for prepared epoch %d", epoch)
			}
			return nil
		},
		OnCommit: func(epoch int64) error {
			if trap.Load() == trapCommit {
				signal(epoch)
				return fmt.Errorf("chaos: dropping commit notification for epoch %d", epoch)
			}
			return nil
		},
		OnRecover: func(committed int64) error {
			if trap.Load() == trapRecover {
				signal(committed)
			}
			return nil
		},
	}

	b := api.NewTopologyBuilder("txn-" + label)
	b.SetSpout("ksrc", func() api.Spout {
		return &workloads.KafkaTxnSpout{Broker: src, Group: group, Stats: stats}
	}, 2).OutputFields("key", "value")
	b.SetBolt("ksink", func() api.Bolt {
		return &workloads.KafkaTxnSink{Broker: sink, Hooks: hooks, Stats: stats}
	}, 2).FieldsGrouping("ksrc", "", "key")
	spec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	cfg := NewConfig()
	cfg.StateRoot = "/txn-" + label
	statemgr.ResetSharedStore(cfg.StateRoot)
	checkpoint.ResetSharedMemory(cfg.StateRoot)
	checkpoint.ResetSharedRedis(cfg.StateRoot)
	cfg.NumContainers = 3
	cfg.SchedulerName = "yarn"
	cfg.CheckpointInterval = 200 * time.Millisecond
	cfg.StateBackend = backendName
	if shards > 0 {
		cfg.StmgrShards = shards
	}
	if ring {
		cfg.Transport = "ring"
	}
	if backendName == "localfs" {
		cfg.Extra = map[string]string{"checkpoint.root": t.TempDir()}
	}
	cl := cluster.New("txn-"+label+"-sim", 4, core.Resource{CPU: 32, RAMMB: 32768, DiskMB: 65536})
	cfg.Framework = cl

	handle, err := Submit(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer handle.Kill()
	if err := handle.WaitRunning(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	poll, err := checkpoint.New(backendName)
	if err != nil {
		t.Fatal(err)
	}
	if err := poll.Initialize(cfg); err != nil {
		t.Fatal(err)
	}
	defer poll.Close()
	latest := func() int64 {
		id, _ := poll.LatestCommitted(handle.Name())
		return id
	}

	// Let the pipeline commit at least one epoch end-to-end first: records
	// visible in the sink broker prove the full prepare → global-commit →
	// notification chain worked before the kill.
	waitFor(t, 15*time.Second, "records staged at the sink", func() bool {
		return stats.Staged.Load() > 0
	})
	waitFor(t, 15*time.Second, "first committed epoch", func() bool {
		return latest() > 0
	})
	waitFor(t, 15*time.Second, "first records committed at the sink", func() bool {
		return audit.CommittedTotal(sink) > 0
	})

	// Arm the window, wait until the pipeline is inside it, disarm, kill.
	switch window {
	case windowMidEpoch:
		// Nothing to arm: with a 200ms interval any instant is mid-epoch.
	case windowPrepare:
		trap.Store(trapPrepare)
		select {
		case e := <-trapped:
			t.Logf("killing with epoch %d prepared at the sink, never committed", e)
		case <-time.After(15 * time.Second):
			t.Fatal("no prepare landed in the trap window")
		}
		trap.Store(trapOff)
	case windowCommit:
		trap.Store(trapCommit)
		select {
		case e := <-trapped:
			t.Logf("killing with epoch %d globally committed, sink unaware", e)
		case <-time.After(15 * time.Second):
			t.Fatal("no commit notification landed in the trap window")
		}
		trap.Store(trapOff)
	case windowRestore:
		trap.Store(trapRecover)
	}
	committedBefore := latest()
	if err := cl.InjectFailure(handle.Name(), 1); err != nil {
		t.Fatal(err)
	}

	if window == windowRestore {
		// The relaunched sink signals from inside its recovery pass; a
		// second kill then lands while the cluster is still restoring.
		select {
		case e := <-trapped:
			t.Logf("second kill during recovery at committed epoch %d", e)
		case <-time.After(15 * time.Second):
			t.Fatal("recovery never reached the sink's recover hook")
		}
		trap.Store(trapOff)
		for _, id := range []int32{1, 2, 3} {
			id := id
			waitFor(t, 15*time.Second, fmt.Sprintf("container %d up before second kill", id), func() bool {
				return cl.Allocated(handle.Name(), id)
			})
		}
		if err := cl.InjectFailure(handle.Name(), 2); err != nil {
			t.Fatal(err)
		}
	}

	for _, id := range []int32{1, 2, 3} {
		id := id
		waitFor(t, 15*time.Second, fmt.Sprintf("container %d relaunched", id), func() bool {
			return cl.Allocated(handle.Name(), id)
		})
	}
	waitFor(t, 15*time.Second, "state restored", func() bool {
		return handle.SumCounter(metrics.MRestoreCount) > 0
	})
	// Checkpointing must survive the kill: the epochs that carry the
	// replayed tail to the sink commit after recovery.
	waitFor(t, 30*time.Second, "post-recovery commit", func() bool {
		return latest() > committedBefore
	})

	// Drain: the source is finite, so once every record's epoch commits
	// the sink's committed set stops growing at exactly the input size.
	waitFor(t, 60*time.Second, "sink committed the whole input", func() bool {
		return audit.CommittedTotal(sink) >= total
	})
	// A couple more intervals so any straggler commit lands before the
	// final audit (a late duplicate must not escape the comparison).
	time.Sleep(500 * time.Millisecond)

	got := audit.CommittedMultiset(sink)
	if missing, dups, sample := audit.DiffMultisets(expected, got); missing != 0 || dups != 0 {
		t.Fatalf("exactly-once violated: %d missing, %d duplicated (%s)", missing, dups, sample)
	}

	// The tentpole's other edge: the consumer group's durable offsets must
	// converge to the end of the source log once the final epoch commits.
	waitFor(t, 30*time.Second, "consumer-group offsets at end of log", func() bool {
		var sum int64
		for _, off := range src.FetchOffsets(group) {
			sum += off
		}
		return sum == int64(total)
	})
}

// forEachBackend runs f under every checkpoint backend as subtests.
func forEachBackend(t *testing.T, f func(t *testing.T, backend string)) {
	for _, backend := range []string{"memory", "localfs", "redis"} {
		backend := backend
		t.Run(backend, func(t *testing.T) { f(t, backend) })
	}
}

// TestTxnExactlyOnceMidEpoch kills a worker with data in flight between
// barriers, on every checkpoint backend.
func TestTxnExactlyOnceMidEpoch(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		runTxnExactlyOnce(t, backend, "mid-"+backend, 0, false, windowMidEpoch)
	})
}

// TestTxnExactlyOncePrepareWindow kills a worker after the sink's
// transaction is prepared at the broker but before the epoch globally
// commits: recovery must abort the undecided transaction and replay its
// records under a later epoch, on every checkpoint backend.
func TestTxnExactlyOncePrepareWindow(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		runTxnExactlyOnce(t, backend, "prep-"+backend, 0, false, windowPrepare)
	})
}

// TestTxnExactlyOncePrepareWindowSharded is the acceptance matrix's other
// half: the same prepare-window kill with four-way sharded Stream
// Managers (the memory variant additionally crosses the shared-memory
// ring transport, exercising MsgCommitted through shard rings).
func TestTxnExactlyOncePrepareWindowSharded(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		runTxnExactlyOnce(t, backend, "prep4-"+backend, 4, backend == "memory", windowPrepare)
	})
}

// TestTxnExactlyOnceCommitWindow kills a worker after the epoch globally
// commits in the backend but before the sink hears about it: recovery
// must COMMIT the pending transaction (the epoch won), not abort it.
func TestTxnExactlyOnceCommitWindow(t *testing.T) {
	runTxnExactlyOnce(t, "memory", "commit-memory", 0, false, windowCommit)
}

// TestTxnExactlyOnceKillDuringRestore kills the cluster a second time
// while the first recovery is still resolving pending transactions —
// recovery itself must be idempotent.
func TestTxnExactlyOnceKillDuringRestore(t *testing.T) {
	runTxnExactlyOnce(t, "memory", "restore-memory", 0, false, windowRestore)
}

// ---------------------------------------------------------------------------
// Exactly-once across control-plane failover: the same transactional
// pipeline and exact multiset audit as above, but the kill targets the
// LEADING TMASTER instead of a worker. A standby replays the control log
// (including the checkpoint ledger), re-registers with the Stream
// Managers, re-broadcasts the last global commit, and the pipeline must
// finish with zero loss and zero duplicates — the sink never hears a
// commit decision twice and never misses one.

func runTxnLeaderKill(t *testing.T, backendName, label string, shards int, ring bool, midRescale bool) {
	nPer := 256
	if audit.RaceEnabled() {
		nPer = 96
	}
	src := kafkasim.NewBroker(4)
	expected := audit.PreloadUnique(src, nPer)
	total := 4 * nPer
	sink := kafkasim.NewBroker(4)
	stats := &workloads.KafkaStats{}
	group := "grp-" + label

	b := api.NewTopologyBuilder("txnha-" + label)
	b.SetSpout("ksrc", func() api.Spout {
		return &workloads.KafkaTxnSpout{Broker: src, Group: group, Stats: stats}
	}, 2).OutputFields("key", "value")
	b.SetBolt("ksink", func() api.Bolt {
		return &workloads.KafkaTxnSink{Broker: sink, Stats: stats}
	}, 2).FieldsGrouping("ksrc", "", "key")
	spec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	cfg := NewConfig()
	cfg.StateRoot = "/txnha-" + label
	statemgr.ResetSharedStore(cfg.StateRoot)
	checkpoint.ResetSharedMemory(cfg.StateRoot)
	checkpoint.ResetSharedRedis(cfg.StateRoot)
	cfg.NumContainers = 3
	cfg.SchedulerName = "yarn"
	cfg.CheckpointInterval = 200 * time.Millisecond
	cfg.StateBackend = backendName
	cfg.ControlReplicas = 2
	if shards > 0 {
		cfg.StmgrShards = shards
	}
	if ring {
		cfg.Transport = "ring"
	}
	if backendName == "localfs" {
		cfg.Extra = map[string]string{"checkpoint.root": t.TempDir()}
	}
	cl := cluster.New("txnha-"+label+"-sim", 4, core.Resource{CPU: 32, RAMMB: 32768, DiskMB: 65536})
	cfg.Framework = cl

	handle, err := Submit(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer handle.Kill()
	if err := handle.WaitRunning(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	poll, err := checkpoint.New(backendName)
	if err != nil {
		t.Fatal(err)
	}
	if err := poll.Initialize(cfg); err != nil {
		t.Fatal(err)
	}
	defer poll.Close()
	latest := func() int64 {
		id, _ := poll.LatestCommitted(handle.Name())
		return id
	}

	// At least one epoch commits end-to-end before the kill: the chain
	// prepare → global-commit → notification demonstrably works.
	waitFor(t, 15*time.Second, "first committed epoch", func() bool {
		return latest() > 0
	})
	waitFor(t, 15*time.Second, "first records committed at the sink", func() bool {
		return audit.CommittedTotal(sink) > 0
	})

	old, hadLeader := controlLeader(handle)
	if !hadLeader {
		t.Fatal("no control leader after first commit")
	}
	epochAtKill := latest()

	if midRescale {
		// Kill the leader inside the rescale protocol: after the barrier
		// and the begin record, before any state moves. The sink is
		// stateless, so this drives the no-repartition arm of the resumed
		// rescale. One-shot: the retry wrapper must not kill successors.
		var once sync.Once
		handle.hookAfterRescaleBarrier = func() {
			once.Do(func() {
				if killed, err := handle.KillLeader(); err != nil || !killed {
					t.Errorf("mid-rescale KillLeader: killed=%v err=%v", killed, err)
				}
			})
		}
		err := RetryNotLeader(30*time.Second, func() error {
			return handle.ScaleComponent("ksink", 3)
		})
		handle.hookAfterRescaleBarrier = nil
		if err != nil {
			t.Fatalf("rescale across leader death: %v", err)
		}
		plan, err := handle.PackingPlan()
		if err != nil {
			t.Fatal(err)
		}
		if got := plan.ComponentCounts()["ksink"]; got != 3 {
			t.Fatalf("ksink parallelism = %d, want 3", got)
		}
	} else {
		killed, err := handle.KillLeader()
		if err != nil {
			t.Fatal(err)
		}
		if !killed {
			t.Fatal("KillLeader found no leader")
		}
	}

	succ := waitControlLeader(t, handle, old)
	t.Logf("leader kill (%s): %s/term=%d -> %s/term=%d",
		label, old.NodeID, old.Term, succ.NodeID, succ.Term)

	// Epochs commit again under the successor's fencing term.
	waitFor(t, 30*time.Second, "post-failover commit", func() bool {
		return latest() > epochAtKill
	})

	// Drain: the source is finite; once every record's epoch commits the
	// sink's committed set stops growing at exactly the input size.
	waitFor(t, 60*time.Second, "sink committed the whole input", func() bool {
		return audit.CommittedTotal(sink) >= total
	})
	time.Sleep(500 * time.Millisecond)

	got := audit.CommittedMultiset(sink)
	if missing, dups, sample := audit.DiffMultisets(expected, got); missing != 0 || dups != 0 {
		t.Fatalf("exactly-once violated across failover: %d missing, %d duplicated (%s)", missing, dups, sample)
	}

	// The consumer group's durable offsets converge to the end of the
	// source log through the successor's commits.
	waitFor(t, 30*time.Second, "consumer-group offsets at end of log", func() bool {
		var sum int64
		for _, off := range src.FetchOffsets(group) {
			sum += off
		}
		return sum == int64(total)
	})
}

// TestTxnFailoverMidEpoch kills the leading TMaster with data in flight
// between barriers, on every checkpoint backend.
func TestTxnFailoverMidEpoch(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		runTxnLeaderKill(t, backend, "ha-mid-"+backend, 0, false, false)
	})
}

// TestTxnFailoverMidEpochSharded repeats the leader kill with four-way
// sharded Stream Managers (the memory variant additionally crosses the
// shared-memory ring transport): the successor must re-register with
// every shard and its re-broadcast commit must reach sinks through shard
// rings.
func TestTxnFailoverMidEpochSharded(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		runTxnLeaderKill(t, backend, "ha-mid4-"+backend, 4, backend == "memory", false)
	})
}

// TestTxnFailoverMidRescale kills the leader inside a rescale of the
// transactional sink, on every checkpoint backend: the surviving Handle
// resumes the rescale through the successor and the exactly-once audit
// still holds.
func TestTxnFailoverMidRescale(t *testing.T) {
	forEachBackend(t, func(t *testing.T, backend string) {
		runTxnLeaderKill(t, backend, "ha-resc-"+backend, 0, false, true)
	})
}
