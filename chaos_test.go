package heron

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"heron/api"
	"heron/internal/cluster"
	"heron/internal/core"
	"heron/internal/metrics"
	"heron/internal/replication"
)

// chaosBolt randomly fails a fraction of its inputs; the acking framework
// must replay them until every distinct message is eventually processed.
type chaosBolt struct {
	failPct   int // percent of tuples to fail on first sight
	processed *processedSet
	out       api.BoltCollector
	rng       *rand.Rand
}

type processedSet struct {
	mu sync.Mutex
	m  map[string]int
}

func (p *processedSet) add(k string) {
	p.mu.Lock()
	p.m[k]++
	p.mu.Unlock()
}

func (p *processedSet) distinct() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.m)
}

func (p *processedSet) retried() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, c := range p.m {
		if c > 1 {
			n++
		}
	}
	return n
}

func (b *chaosBolt) Prepare(ctx api.TopologyContext, out api.BoltCollector) error {
	b.out = out
	b.rng = rand.New(rand.NewSource(int64(ctx.TaskID()) * 31))
	return nil
}

func (b *chaosBolt) Execute(t api.Tuple) error {
	if b.rng.Intn(100) < b.failPct {
		b.out.Fail(t) // explicit failure: the whole tree replays
		return nil
	}
	b.processed.add(t.String(0))
	b.out.Ack(t)
	return nil
}

func (b *chaosBolt) Cleanup() error { return nil }

// uniqueSpout emits distinct ids reliably and replays failures.
type uniqueSpout struct {
	out     api.SpoutCollector
	next    int64
	max     int64
	replay  []string
	acked   *atomic.Int64
	replays *atomic.Int64
}

func (s *uniqueSpout) Open(_ api.TopologyContext, out api.SpoutCollector) error {
	s.out = out
	return nil
}

func (s *uniqueSpout) NextTuple() bool {
	var id string
	switch {
	case len(s.replay) > 0:
		id = s.replay[len(s.replay)-1]
		s.replay = s.replay[:len(s.replay)-1]
	case s.next < s.max:
		id = "msg-" + itoa(s.next)
		s.next++
	default:
		return false
	}
	s.out.Emit("", id, id)
	return true
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func (s *uniqueSpout) Ack(any) { s.acked.Add(1) }

func (s *uniqueSpout) Fail(msgID any) {
	s.replays.Add(1)
	s.replay = append(s.replay, msgID.(string))
}

func (s *uniqueSpout) Close() error { return nil }

// TestAtLeastOnceUnderChaos injects a 20% explicit-failure rate at the
// bolts and verifies every distinct message is eventually processed: the
// XOR tuple-tree machinery, failure notification, and spout replay, end
// to end.
func TestAtLeastOnceUnderChaos(t *testing.T) {
	const n = 1500
	processed := &processedSet{m: map[string]int{}}
	var acked, replays atomic.Int64

	b := api.NewTopologyBuilder("chaos-" + t.Name())
	b.SetSpout("src", func() api.Spout {
		return &uniqueSpout{max: n, acked: &acked, replays: &replays}
	}, 2).OutputFields("id")
	b.SetBolt("flaky", func() api.Bolt {
		return &chaosBolt{failPct: 20, processed: processed}
	}, 3).FieldsGrouping("src", "", "id")
	spec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	cfg := testConfig(t)
	cfg.AckingEnabled = true
	cfg.MaxSpoutPending = 100
	cfg.MessageTimeout = 5 * time.Second

	h, err := Submit(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Kill()
	if err := h.WaitRunning(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Two spouts each emit ids msg-0..msg-(n-1): n distinct ids, each
	// processed at least twice overall. Wait for full coverage.
	waitFor(t, 120*time.Second, "all distinct messages processed", func() bool {
		return processed.distinct() >= n && acked.Load() >= 2*n
	})
	if got := replays.Load(); got == 0 {
		t.Error("chaos injected no failures — test is vacuous")
	}
	t.Logf("distinct=%d acked=%d replays=%d retried-ids=%d",
		processed.distinct(), acked.Load(), replays.Load(), processed.retried())
}

// TestScaleDownEndToEnd shrinks the bolt parallelism mid-run and verifies
// the survivors keep all the traffic and the removed tasks go quiet.
func TestScaleDownEndToEnd(t *testing.T) { runScaleDown(t, 0) }

// TestScaleDownShardedStmgr is the same rescale with the Stream Manager
// hot path split four ways: the task→shard mapping is a pure function of
// the task id, so repartitioning must survive sharding untouched — and
// parked frames for relaunching peers must replay through the right
// shard's outbox.
func TestScaleDownShardedStmgr(t *testing.T) { runScaleDown(t, 4) }

func runScaleDown(t *testing.T, shards int) {
	var f fixture
	spec := f.buildWordCount(t, 2, 6, -1, false)
	cfg := testConfig(t)
	if shards > 0 {
		cfg.StmgrShards = shards
	}

	h, err := Submit(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Kill()
	if err := h.WaitRunning(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "initial flow", func() bool { return f.table.total.Load() > 5000 })

	if err := h.Scale(map[string]int{"count": 2}); err != nil {
		t.Fatal(err)
	}
	plan, err := h.PackingPlan()
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.ComponentCounts()["count"]; got != 2 {
		t.Fatalf("count parallelism = %d after scale-down", got)
	}
	// Give in-flight traffic a moment, then find the active task set.
	time.Sleep(500 * time.Millisecond)
	snapshot := func() map[int32]int64 {
		f.table.mu.Lock()
		defer f.table.mu.Unlock()
		out := map[int32]int64{}
		for _, tasks := range f.table.counts {
			for task, c := range tasks {
				out[task] += c
			}
		}
		return out
	}
	before := snapshot()
	waitFor(t, 20*time.Second, "flow after scale-down", func() bool {
		after := snapshot()
		var grew int64
		for task, c := range after {
			grew += c - before[task]
		}
		return grew > 5000
	})
	after := snapshot()
	grewTasks := map[int32]bool{}
	for task, c := range after {
		if c > before[task] {
			grewTasks[task] = true
		}
	}
	if len(grewTasks) > 2 {
		t.Errorf("%d tasks still receiving traffic after scale-down to 2", len(grewTasks))
	}
}

// ---------------------------------------------------------------------------
// Control-plane failover chaos: Config.ControlReplicas > 1 turns the
// TMaster into one generation of a replicated control plane. These tests
// kill the active leader (hard crash: the lease lapses, a standby fences
// the dead generation, replays the control log, and takes over) at the
// nastiest moments and verify the data plane never notices.

// controlLeader returns the current leader's status, if any replica
// leads right now.
func controlLeader(h *Handle) (replication.Status, bool) {
	for _, st := range h.ControlStatus() {
		if st.Role == replication.RoleLeader {
			return st, true
		}
	}
	return replication.Status{}, false
}

// waitControlLeader waits for a leader whose (node, term) differs from
// prev — i.e. a completed failover — and returns its status.
func waitControlLeader(t *testing.T, h *Handle, prev replication.Status) replication.Status {
	t.Helper()
	var succ replication.Status
	waitFor(t, 20*time.Second, "standby takeover", func() bool {
		st, ok := controlLeader(h)
		if !ok || st.NodeID == prev.NodeID || st.Term <= prev.Term {
			return false
		}
		succ = st
		return true
	})
	return succ
}

// TestControlPlaneFailoverMidEpoch hard-kills the leading TMaster with
// checkpoint epochs in flight. A standby must win the election with a
// higher fencing term, resume global commits past the kill point, serve
// control operations again, and the stateful pipeline must keep exact
// counts throughout — workers never restart for a control-plane death.
func TestControlPlaneFailoverMidEpoch(t *testing.T) {
	dict := healthDict()
	h := &ckptHarness{spouts: map[int32]*seqSpout{}, bolts: map[int32]*ckptCountBolt{}}
	var slow atomic.Bool
	spec := buildHealthTopology(t, "ctrl-midepoch", h, &slow, dict, 2)

	cfg := healthTestConfig(t, "ctrl-midepoch")
	cfg.CheckpointInterval = 150 * time.Millisecond
	cfg.ControlReplicas = 3
	cl := cluster.New("ctrl-midepoch-sim", 4, core.Resource{CPU: 32, RAMMB: 32768, DiskMB: 65536})
	cfg.Framework = cl

	handle, err := Submit(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer handle.Kill()
	if err := handle.WaitRunning(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// The full pool reports in: one leader, two warm standbys.
	waitFor(t, 10*time.Second, "replica pool up", func() bool {
		sts := handle.ControlStatus()
		leaders := 0
		for _, st := range sts {
			if st.Role == replication.RoleLeader {
				leaders++
			}
		}
		return len(sts) == 3 && leaders == 1
	})
	waitFor(t, 20*time.Second, "first committed epoch", func() bool {
		return handle.CommittedEpoch() > 0
	})

	old, ok := controlLeader(handle)
	if !ok {
		t.Fatal("no leader after first commit")
	}
	epochAtKill := handle.CommittedEpoch()

	killed, err := handle.KillLeader()
	if err != nil {
		t.Fatal(err)
	}
	if !killed {
		t.Fatal("KillLeader found no leader")
	}

	succ := waitControlLeader(t, handle, old)
	if succ.Failovers < 1 || succ.LastFailoverNs <= 0 {
		t.Errorf("successor did not account the failover: %+v", succ)
	}

	// Checkpointing resumes under the new generation's term.
	waitFor(t, 30*time.Second, "post-failover commit", func() bool {
		return handle.CommittedEpoch() > epochAtKill
	})

	// Control operations work again; a request landing in the residual
	// window retries through ErrNotLeader.
	if err := RetryNotLeader(20*time.Second, func() error {
		return handle.ScaleComponent("count", 3)
	}); err != nil {
		t.Fatalf("post-failover rescale: %v", err)
	}
	if got := countParallelism(t, handle); got != 3 {
		t.Fatalf("count parallelism = %d after post-failover rescale, want 3", got)
	}

	base := h.executed.Load()
	waitFor(t, 30*time.Second, "post-failover progress", func() bool {
		return h.executed.Load() > base+5_000
	})

	// The merged metrics view carries the replication series: exactly one
	// role=1 gauge (the successor), its term, and the failover latency.
	mv := handle.Metrics()
	if got := mv.Gauge(metrics.MReplicationRole, succ.NodeID); got != 1 {
		t.Errorf("replication.role{%s} = %d, want 1", succ.NodeID, got)
	}
	if got := mv.Gauge(metrics.MReplicationTerm, succ.NodeID); got < succ.Term {
		t.Errorf("replication.term{%s} = %d, want >= %d", succ.NodeID, got, succ.Term)
	}
	if got := mv.Gauge(metrics.MReplicationFailoverLatency, succ.NodeID); got <= 0 {
		t.Errorf("replication.failover-latency-ns{%s} = %d, want > 0", succ.NodeID, got)
	}

	drainAndAudit(t, handle, h, dict)
}

// TestControlPlaneFailoverMidRescale kills the leader inside the
// stateful-rescale protocol — after the checkpoint barrier and the
// rescale-begin control record, before any state moves. The surviving
// Handle must resume the rescale through the successor (the reserve step
// fails with ErrNotLeader and re-resolves the leader) and the exact-count
// audit must still hold across the repartitioned relaunch.
func TestControlPlaneFailoverMidRescale(t *testing.T) {
	dict := healthDict()
	h := &ckptHarness{spouts: map[int32]*seqSpout{}, bolts: map[int32]*ckptCountBolt{}}
	var slow atomic.Bool
	spec := buildHealthTopology(t, "ctrl-midrescale", h, &slow, dict, 2)

	cfg := healthTestConfig(t, "ctrl-midrescale")
	cfg.ControlReplicas = 3
	cl := cluster.New("ctrl-midrescale-sim", 4, core.Resource{CPU: 32, RAMMB: 32768, DiskMB: 65536})
	cfg.Framework = cl

	handle, err := Submit(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer handle.Kill()
	if err := handle.WaitRunning(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 20*time.Second, "first committed epoch", func() bool {
		return handle.CommittedEpoch() > 0
	})
	old, ok := controlLeader(handle)
	if !ok {
		t.Fatal("no leader after first commit")
	}

	// One-shot: the retry wrapper must not decapitate every successor.
	var once sync.Once
	handle.hookAfterRescaleBarrier = func() {
		once.Do(func() {
			if killed, err := handle.KillLeader(); err != nil || !killed {
				t.Errorf("mid-rescale KillLeader: killed=%v err=%v", killed, err)
			}
		})
	}
	err = RetryNotLeader(30*time.Second, func() error {
		return handle.ScaleComponent("count", 4)
	})
	handle.hookAfterRescaleBarrier = nil
	if err != nil {
		t.Fatalf("rescale across leader death: %v", err)
	}
	if got := countParallelism(t, handle); got != 4 {
		t.Fatalf("count parallelism = %d, want 4", got)
	}

	succ := waitControlLeader(t, handle, old)
	t.Logf("rescale survived failover %s/term=%d -> %s/term=%d",
		old.NodeID, old.Term, succ.NodeID, succ.Term)

	waitFor(t, 15*time.Second, "state restored on relaunch", func() bool {
		return handle.SumCounter(metrics.MRestoreCount) > 0
	})
	base := h.executed.Load()
	waitFor(t, 30*time.Second, "post-rescale progress", func() bool {
		return h.executed.Load() > base+5_000
	})

	drainAndAudit(t, handle, h, dict)
}

// TestControlPlaneSurvivesTMasterContainerKill kills container 0 — the
// TMaster's own container — through the scheduler's failure path. With a
// replicated control plane the pool standby takes over, the scheduler
// re-places only container 0 (a fresh candidate joins as standby), and
// crucially the WORKERS never quiesce: zero restores, commits continue.
func TestControlPlaneSurvivesTMasterContainerKill(t *testing.T) {
	dict := healthDict()
	h := &ckptHarness{spouts: map[int32]*seqSpout{}, bolts: map[int32]*ckptCountBolt{}}
	var slow atomic.Bool
	spec := buildHealthTopology(t, "ctrl-c0kill", h, &slow, dict, 2)

	cfg := healthTestConfig(t, "ctrl-c0kill")
	cfg.ControlReplicas = 2
	cl := cluster.New("ctrl-c0kill-sim", 4, core.Resource{CPU: 32, RAMMB: 32768, DiskMB: 65536})
	cfg.Framework = cl

	handle, err := Submit(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer handle.Kill()
	if err := handle.WaitRunning(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 20*time.Second, "first committed epoch", func() bool {
		return handle.CommittedEpoch() > 0
	})
	old, ok := controlLeader(handle)
	if !ok {
		t.Fatal("no leader after first commit")
	}
	epochAtKill := handle.CommittedEpoch()

	if err := cl.InjectFailure(handle.Name(), core.TMasterContainerID); err != nil {
		t.Fatal(err)
	}

	succ := waitControlLeader(t, handle, old)
	t.Logf("container-0 kill: %s/term=%d -> %s/term=%d",
		old.NodeID, old.Term, succ.NodeID, succ.Term)
	waitFor(t, 30*time.Second, "post-kill commit", func() bool {
		return handle.CommittedEpoch() > epochAtKill
	})
	// The scheduler re-places the control container.
	waitFor(t, 15*time.Second, "container 0 re-placed", func() bool {
		return cl.Allocated(handle.Name(), core.TMasterContainerID)
	})

	base := h.executed.Load()
	waitFor(t, 30*time.Second, "post-kill progress", func() bool {
		return h.executed.Load() > base+5_000
	})
	// The whole point of control-plane replication: a TMaster death is NOT
	// a data-plane event. No worker restarted, no state restore ran.
	if n := handle.SumCounter(metrics.MRestoreCount); n != 0 {
		t.Errorf("restore-count = %d after a control-only kill, want 0", n)
	}

	drainAndAudit(t, handle, h, dict)
}
