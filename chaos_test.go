package heron

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"heron/api"
)

// chaosBolt randomly fails a fraction of its inputs; the acking framework
// must replay them until every distinct message is eventually processed.
type chaosBolt struct {
	failPct   int // percent of tuples to fail on first sight
	processed *processedSet
	out       api.BoltCollector
	rng       *rand.Rand
}

type processedSet struct {
	mu sync.Mutex
	m  map[string]int
}

func (p *processedSet) add(k string) {
	p.mu.Lock()
	p.m[k]++
	p.mu.Unlock()
}

func (p *processedSet) distinct() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.m)
}

func (p *processedSet) retried() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, c := range p.m {
		if c > 1 {
			n++
		}
	}
	return n
}

func (b *chaosBolt) Prepare(ctx api.TopologyContext, out api.BoltCollector) error {
	b.out = out
	b.rng = rand.New(rand.NewSource(int64(ctx.TaskID()) * 31))
	return nil
}

func (b *chaosBolt) Execute(t api.Tuple) error {
	if b.rng.Intn(100) < b.failPct {
		b.out.Fail(t) // explicit failure: the whole tree replays
		return nil
	}
	b.processed.add(t.String(0))
	b.out.Ack(t)
	return nil
}

func (b *chaosBolt) Cleanup() error { return nil }

// uniqueSpout emits distinct ids reliably and replays failures.
type uniqueSpout struct {
	out     api.SpoutCollector
	next    int64
	max     int64
	replay  []string
	acked   *atomic.Int64
	replays *atomic.Int64
}

func (s *uniqueSpout) Open(_ api.TopologyContext, out api.SpoutCollector) error {
	s.out = out
	return nil
}

func (s *uniqueSpout) NextTuple() bool {
	var id string
	switch {
	case len(s.replay) > 0:
		id = s.replay[len(s.replay)-1]
		s.replay = s.replay[:len(s.replay)-1]
	case s.next < s.max:
		id = "msg-" + itoa(s.next)
		s.next++
	default:
		return false
	}
	s.out.Emit("", id, id)
	return true
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func (s *uniqueSpout) Ack(any) { s.acked.Add(1) }

func (s *uniqueSpout) Fail(msgID any) {
	s.replays.Add(1)
	s.replay = append(s.replay, msgID.(string))
}

func (s *uniqueSpout) Close() error { return nil }

// TestAtLeastOnceUnderChaos injects a 20% explicit-failure rate at the
// bolts and verifies every distinct message is eventually processed: the
// XOR tuple-tree machinery, failure notification, and spout replay, end
// to end.
func TestAtLeastOnceUnderChaos(t *testing.T) {
	const n = 1500
	processed := &processedSet{m: map[string]int{}}
	var acked, replays atomic.Int64

	b := api.NewTopologyBuilder("chaos-" + t.Name())
	b.SetSpout("src", func() api.Spout {
		return &uniqueSpout{max: n, acked: &acked, replays: &replays}
	}, 2).OutputFields("id")
	b.SetBolt("flaky", func() api.Bolt {
		return &chaosBolt{failPct: 20, processed: processed}
	}, 3).FieldsGrouping("src", "", "id")
	spec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	cfg := testConfig(t)
	cfg.AckingEnabled = true
	cfg.MaxSpoutPending = 100
	cfg.MessageTimeout = 5 * time.Second

	h, err := Submit(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Kill()
	if err := h.WaitRunning(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Two spouts each emit ids msg-0..msg-(n-1): n distinct ids, each
	// processed at least twice overall. Wait for full coverage.
	waitFor(t, 120*time.Second, "all distinct messages processed", func() bool {
		return processed.distinct() >= n && acked.Load() >= 2*n
	})
	if got := replays.Load(); got == 0 {
		t.Error("chaos injected no failures — test is vacuous")
	}
	t.Logf("distinct=%d acked=%d replays=%d retried-ids=%d",
		processed.distinct(), acked.Load(), replays.Load(), processed.retried())
}

// TestScaleDownEndToEnd shrinks the bolt parallelism mid-run and verifies
// the survivors keep all the traffic and the removed tasks go quiet.
func TestScaleDownEndToEnd(t *testing.T) { runScaleDown(t, 0) }

// TestScaleDownShardedStmgr is the same rescale with the Stream Manager
// hot path split four ways: the task→shard mapping is a pure function of
// the task id, so repartitioning must survive sharding untouched — and
// parked frames for relaunching peers must replay through the right
// shard's outbox.
func TestScaleDownShardedStmgr(t *testing.T) { runScaleDown(t, 4) }

func runScaleDown(t *testing.T, shards int) {
	var f fixture
	spec := f.buildWordCount(t, 2, 6, -1, false)
	cfg := testConfig(t)
	if shards > 0 {
		cfg.StmgrShards = shards
	}

	h, err := Submit(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Kill()
	if err := h.WaitRunning(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "initial flow", func() bool { return f.table.total.Load() > 5000 })

	if err := h.Scale(map[string]int{"count": 2}); err != nil {
		t.Fatal(err)
	}
	plan, err := h.PackingPlan()
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.ComponentCounts()["count"]; got != 2 {
		t.Fatalf("count parallelism = %d after scale-down", got)
	}
	// Give in-flight traffic a moment, then find the active task set.
	time.Sleep(500 * time.Millisecond)
	snapshot := func() map[int32]int64 {
		f.table.mu.Lock()
		defer f.table.mu.Unlock()
		out := map[int32]int64{}
		for _, tasks := range f.table.counts {
			for task, c := range tasks {
				out[task] += c
			}
		}
		return out
	}
	before := snapshot()
	waitFor(t, 20*time.Second, "flow after scale-down", func() bool {
		after := snapshot()
		var grew int64
		for task, c := range after {
			grew += c - before[task]
		}
		return grew > 5000
	})
	after := snapshot()
	grewTasks := map[int32]bool{}
	for task, c := range after {
		if c > before[task] {
			grewTasks[task] = true
		}
	}
	if len(grewTasks) > 2 {
		t.Errorf("%d tasks still receiving traffic after scale-down to 2", len(grewTasks))
	}
}
