package heron

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"heron/streamlet"
	"heron/windows"
)

// TestStreamletClickstreamEndToEnd runs the sessionized clickstream
// scenario (examples/clickstream) inside the real engine with exact-count
// audits: a deterministic click stream fans out into (a) per-user session
// activity over tumbling time windows and (b) a skew-tolerant two-phase
// CountByKey of page views. Every click must be counted exactly once on
// both branches.
func TestStreamletClickstreamEndToEnd(t *testing.T) {
	const (
		users         = 8
		clicksPerUser = 250
		total         = users * clicksPerUser
	)
	pages := []string{"/home", "/search", "/item", "/cart"}
	perPage := total / len(pages)

	// Deterministic supplier: user i%users clicks page i%len(pages).
	var next int
	gen := func() (any, bool) {
		if next >= total {
			return nil, false
		}
		i := next
		next++
		return fmt.Sprintf("user-%d %s", i%users, pages[i%len(pages)]), true
	}

	var sessionClicks atomic.Int64 // clicks counted via session windows
	var mu sync.Mutex
	perUser := map[string]int64{}    // user → clicks across all sessions
	pageCounts := map[string]int64{} // page → latest running count

	b := streamlet.NewBuilder("clickstream-" + t.Name())
	clicks := b.Source("clicks", gen)

	// Branch 1: sessionized per-user activity. Tumbling time windows chop
	// each user's stream into sessions; the windowed reduce counts clicks
	// per user per session.
	clicks.
		KeyValueBy(
			func(v any) any { return strings.Fields(v.(string))[0] },
			func(v any) any { return int64(1) },
		).
		ReduceByKeyAndWindow(windows.Tumbling(300*time.Millisecond), func(a, v any) any {
			return a.(int64) + v.(int64)
		}).WithName("sessions").
		Consume(func(kv streamlet.KeyValue) {
			n := kv.Value.(int64)
			sessionClicks.Add(n)
			mu.Lock()
			perUser[kv.Key.(string)] += n
			mu.Unlock()
		})

	// Branch 2: page popularity via the skew-tolerant two-phase count
	// (parallelism 3 forces the partial + merge split).
	clicks.
		KeyValueBy(
			func(v any) any { return strings.Fields(v.(string))[1] },
			nil,
		).
		CountByKey().WithName("pageviews").WithParallelism(3).
		Consume(func(kv streamlet.KeyValue) {
			mu.Lock()
			pageCounts[kv.Key.(string)] = kv.Value.(int64)
			mu.Unlock()
		})

	spec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The planner must have split the parallel count into two phases.
	if spec.Topology.Component("pageviews-partial") == nil {
		t.Fatal("planner did not split pageviews into partial + merge stages")
	}

	h, err := Submit(spec, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Kill()
	if err := h.WaitRunning(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Exact conservation: every click lands in exactly one session window.
	waitFor(t, 120*time.Second, "all clicks sessionized", func() bool {
		return sessionClicks.Load() == total
	})
	// And every click reaches its page's running count.
	waitFor(t, 120*time.Second, "page counts converged", func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, p := range pages {
			if pageCounts[p] != int64(perPage) {
				return false
			}
		}
		return true
	})

	mu.Lock()
	defer mu.Unlock()
	if len(perUser) != users {
		t.Fatalf("saw %d users, want %d", len(perUser), users)
	}
	for u, n := range perUser {
		if n != clicksPerUser {
			t.Errorf("user %s: %d clicks, want %d", u, n, clicksPerUser)
		}
	}
	if len(pageCounts) != len(pages) {
		t.Errorf("saw %d pages, want %d: %v", len(pageCounts), len(pages), pageCounts)
	}
}

// TestStreamletTopWordsEndToEnd runs the windowed trending-words scenario
// (examples/topwords): sentences with known word frequencies flow through
// a flatmap into per-word counts over tumbling count windows. Window
// sums must conserve the exact word total and rank the known top word
// first.
func TestStreamletTopWordsEndToEnd(t *testing.T) {
	// Each pass over the script contributes 10 words with known
	// frequencies: heron 3, streams 2, tuples 2, scales 1, acks 1, fast 1.
	script := []string{
		"heron streams tuples",
		"heron scales streams",
		"heron acks tuples fast",
	}
	const (
		passes     = 100
		wordsTotal = passes * 10
		windowSize = 100 // divides wordsTotal: every window closes
	)
	wantTotals := map[string]int64{
		"heron": 3 * passes, "streams": 2 * passes, "tuples": 2 * passes,
		"scales": passes, "acks": passes, "fast": passes,
	}

	var next int
	gen := func() (any, bool) {
		if next >= passes*len(script) {
			return nil, false
		}
		s := script[next%len(script)]
		next++
		return s, true
	}

	var counted atomic.Int64
	var mu sync.Mutex
	totals := map[string]int64{}

	b := streamlet.NewBuilder("topwords-" + t.Name())
	b.Source("sentences", gen).
		FlatMap(func(v any) []any {
			var out []any
			for _, w := range strings.Fields(v.(string)) {
				out = append(out, w)
			}
			return out
		}).
		KeyValueBy(
			func(v any) any { return v },
			func(v any) any { return int64(1) },
		).
		ReduceByKeyAndWindow(windows.TumblingCount(windowSize), func(a, v any) any {
			return a.(int64) + v.(int64)
		}).WithName("wordcounts").
		Consume(func(kv streamlet.KeyValue) {
			n := kv.Value.(int64)
			counted.Add(n)
			mu.Lock()
			totals[kv.Key.(string)] += n
			mu.Unlock()
		})

	spec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	h, err := Submit(spec, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Kill()
	if err := h.WaitRunning(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Exact conservation: wordsTotal is a multiple of the window size, so
	// every word lands in exactly one closed window.
	waitFor(t, 120*time.Second, "all words counted", func() bool {
		return counted.Load() == wordsTotal
	})

	mu.Lock()
	defer mu.Unlock()
	for w, want := range wantTotals {
		if totals[w] != want {
			t.Errorf("word %q: %d, want %d", w, totals[w], want)
		}
	}
	// Top-3 ranking: heron first, then {streams, tuples} in either order.
	type wc struct {
		w string
		n int64
	}
	var ranked []wc
	for w, n := range totals {
		ranked = append(ranked, wc{w, n})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].w < ranked[j].w
	})
	if ranked[0].w != "heron" {
		t.Errorf("top word = %q, want heron (ranking %v)", ranked[0].w, ranked)
	}
	second := map[string]bool{ranked[1].w: true, ranked[2].w: true}
	if !second["streams"] || !second["tuples"] {
		t.Errorf("top-3 tail = %v, want {streams, tuples}", ranked[1:3])
	}
}
