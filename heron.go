// Package heron is the public entry point of this repository: a Go
// implementation of the modular, extensible streaming engine described in
// "Twitter Heron: Towards Extensible Streaming Engines" (ICDE 2017).
//
// Topologies are built with the api package and submitted with Submit.
// Every module — packing algorithm (Resource Manager), Scheduler, State
// Manager, transport, codec — is selected by name in the Config, and new
// implementations plug in through the registries in internal/core without
// touching the rest of the system.
//
//	spec, _ := builder.Build()
//	cfg := heron.NewConfig()
//	cfg.SchedulerName = "yarn"          // or "local", "aurora"
//	cfg.PackingAlgorithm = "binpacking" // or "roundrobin"
//	h, err := heron.Submit(spec, cfg)
//	defer h.Kill()
package heron

import (
	"errors"
	"fmt"
	"time"

	"heron/api"
	"heron/internal/checkpoint"
	"heron/internal/core"
	"heron/internal/healthmgr"
	"heron/internal/metrics"
	"heron/internal/observability"
	"heron/internal/packing"
	"heron/internal/runtime"

	// Register the built-in module implementations.
	_ "heron/internal/scheduler"
	_ "heron/internal/statemgr"
)

// Config re-exports the engine configuration.
type Config = core.Config

// Resource re-exports the resource vector.
type Resource = core.Resource

// NewConfig returns the default configuration (optimized data plane,
// round-robin packing, local scheduler, in-memory state manager).
func NewConfig() *Config { return core.NewConfig() }

// Handle controls one submitted topology.
type Handle struct {
	name   string
	cfg    *core.Config
	spec   *api.Spec
	state  core.StateManager
	rm     core.ResourceManager
	sched  core.Scheduler
	engine *runtime.Engine
	obs    *observability.Server
	health *healthmgr.Manager
	killed bool

	// Multi-tenant hooks (nil for standalone submissions): admitUpdate
	// gates every rescale against the tenant quota, onKill releases the
	// quota reservation when the topology dies.
	admitUpdate func(current, proposed *core.PackingPlan) error
	onKill      func()

	// hookAfterRescaleBarrier, when set (chaos tests only), runs after
	// the pre-rescale barrier commits and its begin record is logged —
	// the window where a leader kill leaves a half-done rescale.
	hookAfterRescaleBarrier func()
}

// submitHooks let a shared cluster intercept the submission lifecycle.
// The zero value (standalone Submit) disables every hook.
type submitHooks struct {
	// admitPlan runs after packing and before any container is scheduled;
	// an error aborts the submission (quota admission control).
	admitPlan func(plan *core.PackingPlan, tmAsk core.Resource) error
	// admitUpdate and onKill are installed on the returned Handle.
	admitUpdate func(current, proposed *core.PackingPlan) error
	onKill      func()
}

// Submit validates, packs, and schedules a topology, returning a Handle
// once the containers are launched. The submission path is exactly the
// paper's: Resource Manager pack → State Manager persist → Scheduler
// onSchedule against the configured framework.
//
// Submit dedicates the configured framework to this one topology; to run
// many topologies on one shared substrate under tenant quotas, use
// NewCluster and Cluster.Submit instead.
func Submit(spec *api.Spec, cfg *Config) (*Handle, error) {
	return submit(spec, cfg, submitHooks{})
}

func submit(spec *api.Spec, cfg *Config, hooks submitHooks) (*Handle, error) {
	if spec == nil || spec.Topology == nil {
		return nil, errors.New("heron: nil spec")
	}
	if cfg == nil {
		cfg = NewConfig()
	} else {
		cfg = cfg.Clone()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !healthmgr.KnownPolicy(cfg.HealthPolicy) {
		return nil, fmt.Errorf("heron: unknown health policy %q (have %v)",
			cfg.HealthPolicy, healthmgr.Policies())
	}
	if err := spec.Topology.Validate(); err != nil {
		return nil, err
	}

	state, err := core.NewStateManager(cfg.StateManagerName)
	if err != nil {
		return nil, err
	}
	if err := state.Initialize(cfg); err != nil {
		return nil, err
	}
	if names, err := state.ListTopologies(); err == nil {
		for _, n := range names {
			if n == spec.Topology.Name {
				state.Close()
				return nil, fmt.Errorf("heron: topology %q already exists on this state tree: "+
					"a second submission would collide on its statemgr keys and checkpoint namespace; "+
					"kill the running topology first or pick a unique name (%w)", n, core.ErrDuplicateTopology)
			}
		}
	}
	if err := state.SetTopology(spec.Topology); err != nil {
		state.Close()
		return nil, err
	}

	rm, err := core.NewResourceManager(cfg.PackingAlgorithm)
	if err != nil {
		state.Close()
		return nil, err
	}
	if err := rm.Initialize(cfg, spec.Topology); err != nil {
		state.Close()
		return nil, err
	}
	plan, err := rm.Pack()
	if err != nil {
		state.Close()
		return nil, err
	}
	admitted := false
	abort := func() {
		_ = state.DeleteTopology(spec.Topology.Name)
		state.Close()
		if admitted && hooks.onKill != nil {
			hooks.onKill()
		}
	}
	if hooks.admitPlan != nil {
		if err := hooks.admitPlan(plan, cfg.TMasterResources); err != nil {
			abort()
			return nil, err
		}
		admitted = true
	}
	if err := state.SetPackingPlan(spec.Topology.Name, plan); err != nil {
		abort()
		return nil, err
	}

	engine := runtime.NewEngine(cfg, spec)
	cfg.Launcher = engine

	sched, err := core.NewScheduler(cfg.SchedulerName)
	if err != nil {
		abort()
		return nil, err
	}
	if err := sched.Initialize(cfg); err != nil {
		abort()
		return nil, err
	}
	if err := sched.OnSchedule(plan); err != nil {
		sched.Close()
		abort()
		return nil, err
	}
	_ = state.SetSchedulerLocation(core.SchedulerLocation{
		Topology: spec.Topology.Name, Kind: cfg.SchedulerName,
	})
	h := &Handle{
		name: spec.Topology.Name, cfg: cfg, spec: spec,
		state: state, rm: rm, sched: sched, engine: engine,
		admitUpdate: hooks.admitUpdate, onKill: hooks.onKill,
	}
	if cfg.HealthInterval > 0 {
		hm, err := healthmgr.New(healthmgr.Options{
			Topology:        h,
			Policy:          cfg.HealthPolicy,
			Interval:        cfg.HealthInterval,
			AckingEnabled:   cfg.AckingEnabled,
			MaxSpoutPending: cfg.MaxSpoutPending,
			ActionLog:       h.healthActionLog(),
		})
		if err != nil {
			_ = h.Kill()
			return nil, err
		}
		h.health = hm
		hm.Start()
	}
	if cfg.HTTPAddr != "" {
		obs, err := observability.Start(observability.Options{
			Addr:     cfg.HTTPAddr,
			Topology: h.name,
			View:     h.Metrics,
			Pprof:    cfg.HTTPPprof,
			Health:   h.healthStatus(),
			Control:  h.controlHealth(),
		})
		if err != nil {
			_ = h.Kill()
			return nil, fmt.Errorf("heron: observability server: %w", err)
		}
		h.obs = obs
	}
	return h, nil
}

// healthStatus adapts the health manager's status for the /health
// endpoint (nil when the manager is disabled).
func (h *Handle) healthStatus() func() any {
	if h.health == nil {
		return nil
	}
	return func() any { return h.health.Status() }
}

// HealthStatus returns the health manager's current status (zero value
// when Config.HealthInterval is 0).
func (h *Handle) HealthStatus() healthmgr.Status {
	if h.health == nil {
		return healthmgr.Status{}
	}
	return h.health.Status()
}

// WaitRunning blocks until the topology's plan has been broadcast to
// every container (all Stream Managers registered), or the timeout
// elapses.
func (h *Handle) WaitRunning(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if tm := h.engine.TMaster(); tm != nil {
			select {
			case <-tm.Ready():
				return nil
			case <-time.After(10 * time.Millisecond):
			}
		} else {
			time.Sleep(5 * time.Millisecond)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("heron: topology %q not running after %v", h.name, timeout)
		}
	}
}

// Scale adjusts component parallelism on the running topology: the
// Resource Manager repacks with minimal disruption, the Scheduler applies
// the container diff, and the Topology Master rebroadcasts the plan.
func (h *Handle) Scale(changes map[string]int) error {
	if h.killed {
		return errors.New("heron: topology killed")
	}
	current, err := h.state.GetPackingPlan(h.name)
	if err != nil {
		return err
	}
	proposed, err := h.rm.Repack(current, changes)
	if err != nil {
		return err
	}
	if h.admitUpdate != nil {
		// Quota admission before anything mutates: a rejection leaves the
		// topology exactly as it was.
		if err := h.admitUpdate(current, proposed); err != nil {
			return err
		}
	}
	topo, err := h.state.GetTopology(h.name)
	if err != nil {
		return err
	}
	counts := current.ComponentCounts()
	for i := range topo.Components {
		if n, ok := counts[topo.Components[i].Name]; ok {
			topo.Components[i].Parallelism = n
		}
	}
	scaled, err := packing.ScaledTopology(topo, changes)
	if err != nil {
		return err
	}
	if err := h.state.SetTopology(scaled); err != nil {
		return err
	}
	if err := h.state.SetPackingPlan(h.name, proposed); err != nil {
		return err
	}
	if err := h.sched.OnUpdate(core.UpdateRequest{Topology: h.name, Current: current, Proposed: proposed}); err != nil {
		if h.admitUpdate != nil {
			// Give the reservation back; the containers never changed.
			_ = h.admitUpdate(proposed, current)
		}
		return err
	}
	if tm := h.engine.TMaster(); tm != nil {
		tm.Refresh()
	}
	return nil
}

// Restart bounces one container (or all, with containerID -1).
func (h *Handle) Restart(containerID int32) error {
	if h.killed {
		return errors.New("heron: topology killed")
	}
	return h.sched.OnRestart(core.RestartRequest{Topology: h.name, ContainerID: containerID})
}

// Kill tears the topology down and removes its state.
func (h *Handle) Kill() error {
	if h.killed {
		return nil
	}
	h.killed = true
	if h.health != nil {
		h.health.Stop()
	}
	if h.obs != nil {
		_ = h.obs.Close()
	}
	err := h.sched.OnKill(core.KillRequest{Topology: h.name})
	// Stop the standby pool after the scheduler tore the containers down
	// (replicated control plane only; no-op otherwise).
	h.engine.StopControl()
	_ = h.sched.Close()
	_ = h.rm.Close()
	_ = h.state.DeleteTopology(h.name)
	_ = h.state.Close()
	if h.cfg.CheckpointInterval > 0 {
		// A killed topology's checkpoints are unreachable; drop them.
		if backend, berr := checkpoint.New(h.cfg.StateBackend); berr == nil {
			if berr = backend.Initialize(h.cfg); berr == nil {
				_ = backend.Dispose(h.name)
				_ = backend.Close()
			}
		}
	}
	if h.onKill != nil {
		h.onKill()
	}
	return err
}

// Name returns the topology name.
func (h *Handle) Name() string { return h.name }

// PackingPlan returns the currently active packing plan.
func (h *Handle) PackingPlan() (*core.PackingPlan, error) {
	return h.state.GetPackingPlan(h.name)
}

// SetMaxSpoutPending retunes the live max-spout-pending window of every
// spout in the running topology (0 = unbounded). This implements the
// paper's Section V-B future work: the parameter can now be driven by
// real-time observations (see the tuning package).
func (h *Handle) SetMaxSpoutPending(n int) error {
	if h.killed {
		return errors.New("heron: topology killed")
	}
	if n < 0 {
		return errors.New("heron: negative max spout pending")
	}
	tm, err := h.leaderTM()
	if err != nil {
		return err
	}
	tm.Tune(n)
	return nil
}

// Metrics returns the topology-wide metrics view: the Topology Master's
// merge of every container's latest pushed snapshot, keyed by the engine
// taxonomy (metrics.MExecuteCount, ...) plus any "user."-prefixed metrics
// registered through api.TopologyContext.Metrics(). The view is a copy —
// safe to read without further synchronization — and reflects the last
// export round (see Config.MetricsExportInterval).
func (h *Handle) Metrics() *metrics.TopologyView {
	var v *metrics.TopologyView
	if tm := h.engine.TMaster(); tm != nil {
		v = tm.MetricsView()
	} else {
		v = metrics.NewView()
	}
	if h.health != nil {
		s := h.health.MetricsSnapshot()
		v.Add(&s)
	}
	h.addControlMetrics(v)
	return v
}

// ObservabilityAddr returns the HTTP introspection server's bound address
// ("" when Config.HTTPAddr was not set).
func (h *Handle) ObservabilityAddr() string {
	if h.obs == nil {
		return ""
	}
	return h.obs.Addr()
}

// Registries exposes the per-container metric registries for measurement
// harnesses (same-process observation; not part of the engine protocol).
func (h *Handle) Registries() map[int32]*metrics.Registry { return h.engine.Registries() }

// SumCounter sums the named taxonomy counter across every task in every
// container, reading the live registries (no export-interval lag).
func (h *Handle) SumCounter(name string) int64 {
	var total int64
	for _, r := range h.engine.Registries() {
		for _, p := range r.Snapshot(0).Counters {
			if p.Name == name {
				total += p.Value
			}
		}
	}
	return total
}

// LatencySnapshots returns every task's snapshot of the named histogram,
// reading the live registries.
func (h *Handle) LatencySnapshots(name string) []metrics.HistogramSnapshot {
	var out []metrics.HistogramSnapshot
	for _, r := range h.engine.Registries() {
		for _, p := range r.Snapshot(0).Histograms {
			if p.Name == name {
				out = append(out, p.HistogramSnapshot)
			}
		}
	}
	return out
}
