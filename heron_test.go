package heron

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"heron/api"
	"heron/internal/metrics"
	"heron/internal/statemgr"
)

// boundedWordSpout emits each word of a fixed list exactly once (plus
// replays of failed tuples when reliable), then idles.
type boundedWordSpout struct {
	words    []string
	next     int
	loop     bool // wrap around instead of drying up
	reliable bool
	out      api.SpoutCollector
	emitted  *atomic.Int64
	acked    *atomic.Int64
	failed   *atomic.Int64
	replay   []string
}

func (s *boundedWordSpout) Open(_ api.TopologyContext, out api.SpoutCollector) error {
	s.out = out
	return nil
}

func (s *boundedWordSpout) NextTuple() bool {
	var w string
	switch {
	case len(s.replay) > 0:
		w = s.replay[len(s.replay)-1]
		s.replay = s.replay[:len(s.replay)-1]
	case s.next < len(s.words):
		w = s.words[s.next]
		s.next++
		if s.loop && s.next == len(s.words) {
			s.next = 0
		}
	default:
		return false
	}
	var id any
	if s.reliable {
		id = w
	}
	s.out.Emit("", id, w)
	s.emitted.Add(1)
	return true
}

func (s *boundedWordSpout) Ack(any) { s.acked.Add(1) }

func (s *boundedWordSpout) Fail(msgID any) {
	s.failed.Add(1)
	s.replay = append(s.replay, msgID.(string))
}

func (s *boundedWordSpout) Close() error { return nil }

// countBolt counts words into a shared table, acking each input.
type countBolt struct {
	table *countTable
	out   api.BoltCollector
	task  int32
}

type countTable struct {
	mu sync.Mutex
	// counts[word][task] → n: lets tests verify fields-grouping placement.
	counts map[string]map[int32]int64
	total  atomic.Int64
}

func newCountTable() *countTable { return &countTable{counts: map[string]map[int32]int64{}} }

func (t *countTable) add(word string, task int32) {
	t.mu.Lock()
	m := t.counts[word]
	if m == nil {
		m = map[int32]int64{}
		t.counts[word] = m
	}
	m[task]++
	t.mu.Unlock()
	t.total.Add(1)
}

func (b *countBolt) Prepare(ctx api.TopologyContext, out api.BoltCollector) error {
	b.out = out
	b.task = ctx.TaskID()
	return nil
}

func (b *countBolt) Execute(t api.Tuple) error {
	b.table.add(t.String(0), b.task)
	b.out.Ack(t)
	return nil
}

func (b *countBolt) Cleanup() error { return nil }

func testWords(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("word-%03d", i%97)
	}
	return out
}

type fixture struct {
	emitted, acked, failed atomic.Int64
	table                  *countTable
}

// buildWordCount assembles the paper's Section VI-A topology at the given
// parallelism with a bounded input of n words per spout; a negative n
// gives an endless (looping) source.
func (f *fixture) buildWordCount(t *testing.T, spouts, bolts, wordsPerSpout int, reliable bool) *api.Spec {
	t.Helper()
	f.table = newCountTable()
	loop := wordsPerSpout < 0
	if loop {
		wordsPerSpout = 10_000
	}
	words := testWords(wordsPerSpout) // shared: instances only read it
	b := api.NewTopologyBuilder("wc-" + t.Name())
	b.SetSpout("word", func() api.Spout {
		return &boundedWordSpout{
			words: words, loop: loop, reliable: reliable,
			emitted: &f.emitted, acked: &f.acked, failed: &f.failed,
		}
	}, spouts).OutputFields("word")
	b.SetBolt("count", func() api.Bolt {
		return &countBolt{table: f.table}
	}, bolts).FieldsGrouping("word", "", "word")
	spec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func testConfig(t *testing.T) *Config {
	t.Helper()
	cfg := NewConfig()
	cfg.StateRoot = "/it-" + t.Name()
	statemgr.ResetSharedStore(cfg.StateRoot)
	cfg.NumContainers = 3
	return cfg
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestWordCountEndToEndWithAcks(t *testing.T) {
	var f fixture
	const spouts, bolts, perSpout = 3, 4, 500
	spec := f.buildWordCount(t, spouts, bolts, perSpout, true)
	cfg := testConfig(t)
	cfg.AckingEnabled = true
	cfg.MaxSpoutPending = 100
	cfg.MessageTimeout = 5 * time.Second

	h, err := Submit(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Kill()
	if err := h.WaitRunning(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	total := int64(spouts * perSpout)
	waitFor(t, 120*time.Second, "all tuples acked", func() bool {
		return f.acked.Load() >= total
	})
	if got := f.table.total.Load(); got < total {
		t.Errorf("bolt executed %d < %d emitted", got, total)
	}
	// Fields grouping: each word must live on exactly one task.
	f.table.mu.Lock()
	defer f.table.mu.Unlock()
	for word, tasks := range f.table.counts {
		if len(tasks) != 1 {
			t.Errorf("word %q counted on %d tasks (fields grouping violated)", word, len(tasks))
		}
	}
	// Spout-side accounting.
	if f.acked.Load()+f.failed.Load() < f.emitted.Load() {
		t.Errorf("acked %d + failed %d < emitted %d", f.acked.Load(), f.failed.Load(), f.emitted.Load())
	}
}

func TestWordCountEndToEndWithoutAcks(t *testing.T) {
	var f fixture
	const spouts, bolts, perSpout = 2, 2, 1000
	spec := f.buildWordCount(t, spouts, bolts, perSpout, false)
	cfg := testConfig(t)

	h, err := Submit(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Kill()
	if err := h.WaitRunning(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	total := int64(spouts * perSpout)
	// Without acks delivery is best-effort, but in a healthy run nothing
	// is dropped once the plan is installed everywhere.
	waitFor(t, 120*time.Second, "all tuples counted", func() bool {
		return f.table.total.Load() >= total
	})
	if got := h.SumCounter(metrics.MExecuteCount); got < total {
		t.Errorf("metrics executed = %d < %d", got, total)
	}
}

func TestWordCountNaiveCodecStillCorrect(t *testing.T) {
	// The unoptimized data plane must change cost, not semantics.
	var f fixture
	spec := f.buildWordCount(t, 2, 2, 300, true)
	cfg := testConfig(t)
	cfg.AckingEnabled = true
	cfg.MaxSpoutPending = 50
	cfg.Codec = "naive"
	cfg.StreamManagerOptimized = false
	cfg.MessageTimeout = 5 * time.Second

	h, err := Submit(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Kill()
	if err := h.WaitRunning(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 120*time.Second, "all tuples acked", func() bool {
		return f.acked.Load() >= 2*300
	})
}

func TestSubmitErrors(t *testing.T) {
	if _, err := Submit(nil, nil); err == nil {
		t.Error("nil spec accepted")
	}
	var f fixture
	spec := f.buildWordCount(t, 1, 1, 10, false)
	cfg := testConfig(t)
	cfg.SchedulerName = "no-such-scheduler"
	if _, err := Submit(spec, cfg); err == nil {
		t.Error("unknown scheduler accepted")
	}
	cfg2 := testConfig(t)
	cfg2.MaxSpoutPending = 5 // without acking: invalid
	if _, err := Submit(spec, cfg2); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestDuplicateSubmitRejected(t *testing.T) {
	var f fixture
	spec := f.buildWordCount(t, 1, 1, 10, false)
	cfg := testConfig(t)
	h, err := Submit(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Kill()
	var f2 fixture
	spec2 := f2.buildWordCount(t, 1, 1, 10, false)
	if _, err := Submit(spec2, cfg); err == nil {
		t.Error("duplicate topology accepted")
	}
}

func TestTopologyScalingEndToEnd(t *testing.T) {
	// Scale the count bolt up mid-run and verify the new tasks receive
	// tuples (fields grouping re-partitions over 6 tasks).
	var f fixture
	spec := f.buildWordCount(t, 2, 2, -1, false)
	cfg := testConfig(t)

	h, err := Submit(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Kill()
	if err := h.WaitRunning(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "initial flow", func() bool { return f.table.total.Load() > 1000 })

	if err := h.Scale(map[string]int{"count": 6}); err != nil {
		t.Fatal(err)
	}
	plan, err := h.PackingPlan()
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.ComponentCounts()["count"]; got != 6 {
		t.Fatalf("plan has %d count instances, want 6", got)
	}
	// With 97 distinct words and 6 tasks, every task should eventually see
	// traffic.
	waitFor(t, 20*time.Second, "all 6 bolt tasks active", func() bool {
		f.table.mu.Lock()
		defer f.table.mu.Unlock()
		active := map[int32]bool{}
		for _, tasks := range f.table.counts {
			for task := range tasks {
				active[task] = true
			}
		}
		return len(active) >= 6
	})
}
