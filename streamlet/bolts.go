package streamlet

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"sort"
	"strconv"
	"strings"

	"heron/api"
	"heron/windows"
)

// chainOps executes a fused chain of stateless operations. The chain's
// per-instance state (Transformer and Sink instances) is built in
// prepare; apply then pushes one element through the chain, invoking out
// for every element that reaches the end.
type chainOps struct {
	ops          []*node
	transformers map[int]Transformer
	sinks        map[int]Sink
}

func newChainOps(ops []*node) *chainOps {
	return &chainOps{ops: ops, transformers: map[int]Transformer{}, sinks: map[int]Sink{}}
}

func (c *chainOps) prepare(ctx api.TopologyContext) error {
	for i, n := range c.ops {
		switch n.kind {
		case opTransform:
			t := n.transformF()
			if err := t.Setup(ctx); err != nil {
				return fmt.Errorf("streamlet: %s setup: %w", n.name, err)
			}
			c.transformers[i] = t
		case opSink:
			if n.sinkF != nil {
				s := n.sinkF()
				if err := s.Setup(ctx); err != nil {
					return fmt.Errorf("streamlet: %s setup: %w", n.name, err)
				}
				c.sinks[i] = s
			}
		}
	}
	return nil
}

func (c *chainOps) apply(i int, v any, out func(any) error) error {
	if i >= len(c.ops) {
		return out(v)
	}
	n := c.ops[i]
	switch n.kind {
	case opMap:
		return c.apply(i+1, n.mapFn(v), out)
	case opFlatMap:
		for _, e := range n.flatMapFn(v) {
			if err := c.apply(i+1, e, out); err != nil {
				return err
			}
		}
		return nil
	case opFilter:
		if !n.filterFn(v) {
			return nil
		}
		return c.apply(i+1, v, out)
	case opTransform:
		var ferr error
		err := c.transformers[i].Transform(v, func(e any) {
			if err := c.apply(i+1, e, out); err != nil && ferr == nil {
				ferr = err
			}
		})
		if err != nil {
			return err
		}
		return ferr
	case opKeyBy:
		kv := KeyValue{Key: n.keyFn(v), Value: v}
		if n.valueFn != nil {
			kv.Value = n.valueFn(v)
		}
		return c.apply(i+1, kv, out)
	case opSink:
		if s, ok := c.sinks[i]; ok {
			return s.Receive(v)
		}
		n.consumeFn(v)
		return nil
	}
	return fmt.Errorf("streamlet: unexpected op %s in chain", n.kind)
}

// elementValues flattens an element into stream fields for the given
// output arity (1 = value, 2 = key/value). It reuses buf.
func elementValues(v any, arity int, buf []any) ([]any, bool) {
	if arity == 2 {
		kv, ok := v.(KeyValue)
		if !ok {
			return nil, false
		}
		return append(buf[:0], kv.Key, kv.Value), true
	}
	return append(buf[:0], v), true
}

// decodeElement rebuilds the element a tuple carries (arity 2 = keyed).
func decodeElement(t api.Tuple, arity int) any {
	vs := t.Values()
	if arity == 2 {
		return KeyValue{Key: vs[0], Value: vs[1]}
	}
	return vs[0]
}

// supplierSpout runs a source stage: the Supplier plus any fused
// stateless chain, emitting the survivors.
type supplierSpout struct {
	gen      Supplier
	ops      *chainOps
	outArity int
	out      api.SpoutCollector
	buf      []any
}

func newSupplierSpout(s *stage) api.Spout {
	return &supplierSpout{
		gen:      s.head.gen,
		ops:      newChainOps(s.chain[1:]),
		outArity: len(s.outFields()),
	}
}

func (s *supplierSpout) Open(ctx api.TopologyContext, out api.SpoutCollector) error {
	s.out = out
	return s.ops.prepare(ctx)
}

func (s *supplierSpout) NextTuple() bool {
	v, ok := s.gen()
	if !ok {
		return false
	}
	err := s.ops.apply(0, v, func(e any) error {
		if s.outArity == 0 {
			return nil
		}
		vals, ok := elementValues(e, s.outArity, s.buf)
		if !ok {
			log.Printf("streamlet: dropping non-KeyValue element %T on keyed stream", e)
			return nil
		}
		s.buf = vals
		s.out.Emit("", nil, vals...)
		return nil
	})
	if err != nil {
		log.Printf("streamlet: source chain: %v", err)
	}
	return true
}

func (s *supplierSpout) Ack(any)      {}
func (s *supplierSpout) Fail(any)     {}
func (s *supplierSpout) Close() error { return nil }

// chainBolt runs a fused stateless bolt stage.
type chainBolt struct {
	ops      *chainOps
	inArity  int
	outArity int
	out      api.BoltCollector
	buf      []any
	anchors  []api.Tuple
}

func newChainBolt(s *stage) api.Bolt {
	in := 1
	if s.head.parents[0].kv {
		in = 2
	}
	return &chainBolt{
		ops:      newChainOps(s.chain),
		inArity:  in,
		outArity: len(s.outFields()),
	}
}

func (b *chainBolt) Prepare(ctx api.TopologyContext, out api.BoltCollector) error {
	b.out = out
	return b.ops.prepare(ctx)
}

func (b *chainBolt) Execute(t api.Tuple) error {
	b.anchors = append(b.anchors[:0], t)
	err := b.ops.apply(0, decodeElement(t, b.inArity), func(e any) error {
		if b.outArity == 0 {
			return nil
		}
		vals, ok := elementValues(e, b.outArity, b.buf)
		if !ok {
			log.Printf("streamlet: dropping non-KeyValue element %T on keyed stream", e)
			return nil
		}
		b.buf = vals
		b.out.Emit("", b.anchors, vals...)
		return nil
	})
	b.out.Ack(t)
	return err
}

func (b *chainBolt) Cleanup() error { return nil }

// --- keyed aggregation bolts -------------------------------------------

// aggEntry is one key's running aggregate (the original key is kept so
// checkpoints can rebuild the map with full type fidelity).
type aggEntry struct {
	key, agg any
}

// reduceCore is the shared running-aggregate map of the reduce bolts,
// keyed by the encoded (type-tagged) key.
type reduceCore struct {
	n     *node
	state map[string]aggEntry
}

func newReduceCore(n *node) reduceCore {
	return reduceCore{n: n, state: map[string]aggEntry{}}
}

func (r *reduceCore) fold(k, v any) any {
	ck := string(encodeValue(k))
	e, ok := r.state[ck]
	if !ok {
		agg := v
		if r.n.seedFn != nil {
			agg = r.n.seedFn(v)
		}
		e = aggEntry{key: k, agg: agg}
	} else {
		e.agg = r.n.reduceFn(e.agg, v)
	}
	r.state[ck] = e
	return e.agg
}

// SaveState implements api.StatefulComponent.
func (r *reduceCore) SaveState(s api.State) error {
	for ck, e := range r.state {
		s.Set(ck, encodeValue(e.agg))
	}
	return nil
}

// RestoreState implements api.StatefulComponent.
func (r *reduceCore) RestoreState(s api.State) error {
	r.state = map[string]aggEntry{}
	var err error
	s.Range(func(ck string, v []byte) bool {
		var key, agg any
		if key, err = decodeValue([]byte(ck)); err != nil {
			return false
		}
		if agg, err = decodeValue(v); err != nil {
			return false
		}
		r.state[ck] = aggEntry{key: key, agg: agg}
		return true
	})
	return err
}

// singleReduceBolt is the parallelism-1 (or merge-free) continuous
// reduce: fields-grouped input, one running aggregate per key, re-emitted
// on every update.
type singleReduceBolt struct {
	reduceCore
	out     api.BoltCollector
	anchors []api.Tuple
}

func newSingleReduceBolt(n *node) api.Bolt {
	return &singleReduceBolt{reduceCore: newReduceCore(n)}
}

func (b *singleReduceBolt) Prepare(_ api.TopologyContext, out api.BoltCollector) error {
	b.out = out
	return nil
}

func (b *singleReduceBolt) Execute(t api.Tuple) error {
	vs := t.Values()
	agg := b.fold(vs[0], vs[1])
	b.anchors = append(b.anchors[:0], t)
	b.out.Emit("", b.anchors, vs[0], agg)
	b.out.Ack(t)
	return nil
}

func (b *singleReduceBolt) Cleanup() error { return nil }

// partialReduceBolt is the first phase of the skew-tolerant reduce:
// partial-key grouped, so a key's tuples split across at most two tasks.
// It emits (key, partial-aggregate, task-part) after every update; the
// merge stage recombines the parts.
type partialReduceBolt struct {
	reduceCore
	part    int64
	out     api.BoltCollector
	anchors []api.Tuple
}

func newPartialReduceBolt(n *node) api.Bolt {
	return &partialReduceBolt{reduceCore: newReduceCore(n)}
}

func (b *partialReduceBolt) Prepare(ctx api.TopologyContext, out api.BoltCollector) error {
	b.out = out
	if ctx != nil {
		b.part = int64(ctx.ComponentIndex())
	}
	return nil
}

func (b *partialReduceBolt) Execute(t api.Tuple) error {
	vs := t.Values()
	agg := b.fold(vs[0], vs[1])
	b.anchors = append(b.anchors[:0], t)
	b.out.Emit("", b.anchors, vs[0], agg, b.part)
	b.out.Ack(t)
	return nil
}

func (b *partialReduceBolt) Cleanup() error { return nil }

// mergeReduceBolt recombines the partial aggregates of one key (fields
// grouped, so every part of a key arrives here). It keeps the latest
// partial per part and emits the merged aggregate on every update.
type mergeReduceBolt struct {
	n       *node
	state   map[string]*mergeEntry
	out     api.BoltCollector
	anchors []api.Tuple
}

type mergeEntry struct {
	key   any
	parts map[int64]any
}

func newMergeReduceBolt(n *node) api.Bolt {
	return &mergeReduceBolt{n: n, state: map[string]*mergeEntry{}}
}

func (b *mergeReduceBolt) Prepare(_ api.TopologyContext, out api.BoltCollector) error {
	b.out = out
	return nil
}

func (b *mergeReduceBolt) Execute(t api.Tuple) error {
	vs := t.Values()
	k, partial, part := vs[0], vs[1], vs[2].(int64)
	ck := string(encodeValue(k))
	e, ok := b.state[ck]
	if !ok {
		e = &mergeEntry{key: k, parts: map[int64]any{}}
		b.state[ck] = e
	}
	e.parts[part] = partial
	// Merge in part order for determinism (mergeFn must be associative
	// and commutative anyway — a key has at most two parts under
	// partial-key grouping).
	ids := make([]int64, 0, len(e.parts))
	for id := range e.parts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	merged := e.parts[ids[0]]
	for _, id := range ids[1:] {
		merged = b.n.mergeFn(merged, e.parts[id])
	}
	b.anchors = append(b.anchors[:0], t)
	b.out.Emit("", b.anchors, k, merged)
	b.out.Ack(t)
	return nil
}

// SaveState implements api.StatefulComponent.
func (b *mergeReduceBolt) SaveState(s api.State) error {
	for ck, e := range b.state {
		for part, partial := range e.parts {
			s.Set(ck+"\x00"+strconv.FormatInt(part, 10), encodeValue(partial))
		}
	}
	return nil
}

// RestoreState implements api.StatefulComponent.
func (b *mergeReduceBolt) RestoreState(s api.State) error {
	b.state = map[string]*mergeEntry{}
	var err error
	s.Range(func(sk string, v []byte) bool {
		i := strings.LastIndexByte(sk, 0)
		if i < 0 {
			err = fmt.Errorf("streamlet: malformed merge state key %q", sk)
			return false
		}
		ck := sk[:i]
		var part int64
		if part, err = strconv.ParseInt(sk[i+1:], 10, 64); err != nil {
			return false
		}
		var key, partial any
		if key, err = decodeValue([]byte(ck)); err != nil {
			return false
		}
		if partial, err = decodeValue(v); err != nil {
			return false
		}
		e, ok := b.state[ck]
		if !ok {
			e = &mergeEntry{key: key, parts: map[int64]any{}}
			b.state[ck] = e
		}
		e.parts[part] = partial
		return true
	})
	return err
}

func (b *mergeReduceBolt) Cleanup() error { return nil }

// newWindowReduceBolt builds the windowed per-key reduce: a windows bolt
// whose handler folds each key's values inside the completed window and
// emits one (key, aggregate) pair per key.
func newWindowReduceBolt(n *node) api.Bolt {
	return n.window.NewBolt(func(_ api.TopologyContext, w windows.Window, out api.BoltCollector) {
		aggs := map[string]aggEntry{}
		order := []string{}
		for _, t := range w.Tuples {
			vs := t.Values()
			ck := string(encodeValue(vs[0]))
			e, ok := aggs[ck]
			if !ok {
				agg := vs[1]
				if n.seedFn != nil {
					agg = n.seedFn(vs[1])
				}
				aggs[ck] = aggEntry{key: vs[0], agg: agg}
				order = append(order, ck)
				continue
			}
			e.agg = n.reduceFn(e.agg, vs[1])
			aggs[ck] = e
		}
		for _, ck := range order {
			e := aggs[ck]
			out.Emit("", w.Tuples, e.key, e.agg)
		}
	})
}

// newJoinBolt builds the windowed inner join: both sides fields-grouped
// here by key; each completed window is split by source stage and every
// (left, right) pair of a key joined.
func newJoinBolt(n *node, left, right string) api.Bolt {
	type sides struct {
		key  any
		l, r []any
	}
	return n.window.NewBolt(func(_ api.TopologyContext, w windows.Window, out api.BoltCollector) {
		byKey := map[string]*sides{}
		order := []string{}
		for _, t := range w.Tuples {
			vs := t.Values()
			ck := string(encodeValue(vs[0]))
			s, ok := byKey[ck]
			if !ok {
				s = &sides{key: vs[0]}
				byKey[ck] = s
				order = append(order, ck)
			}
			if t.SourceComponent() == left {
				s.l = append(s.l, vs[1])
			} else {
				s.r = append(s.r, vs[1])
			}
		}
		for _, ck := range order {
			s := byKey[ck]
			for _, lv := range s.l {
				for _, rv := range s.r {
					out.Emit("", w.Tuples, s.key, n.joinFn(lv, rv))
				}
			}
		}
	})
}

// --- wire-type value codec (checkpoint state + map keys) ---------------

const (
	tagString byte = 1
	tagInt    byte = 2
	tagFloat  byte = 3
	tagBool   byte = 4
	tagBytes  byte = 5
)

// encodeValue serializes a wire-type value with a type tag; it doubles
// as the collision-free map key for keyed aggregations.
func encodeValue(v any) []byte {
	switch x := v.(type) {
	case string:
		return append([]byte{tagString}, x...)
	case int64:
		var b [9]byte
		b[0] = tagInt
		binary.BigEndian.PutUint64(b[1:], uint64(x))
		return b[:]
	case float64:
		var b [9]byte
		b[0] = tagFloat
		binary.BigEndian.PutUint64(b[1:], math.Float64bits(x))
		return b[:]
	case bool:
		if x {
			return []byte{tagBool, 1}
		}
		return []byte{tagBool, 0}
	case []byte:
		return append([]byte{tagBytes}, x...)
	default:
		// Non-wire values cannot cross stages; encode a diagnostic string
		// so the error surfaces in state rather than panicking mid-stream.
		return append([]byte{tagString}, fmt.Sprintf("!unsupported:%T", v)...)
	}
}

// decodeValue inverts encodeValue.
func decodeValue(b []byte) (any, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("streamlet: empty encoded value")
	}
	switch b[0] {
	case tagString:
		return string(b[1:]), nil
	case tagInt:
		if len(b) != 9 {
			return nil, fmt.Errorf("streamlet: bad int64 encoding")
		}
		return int64(binary.BigEndian.Uint64(b[1:])), nil
	case tagFloat:
		if len(b) != 9 {
			return nil, fmt.Errorf("streamlet: bad float64 encoding")
		}
		return math.Float64frombits(binary.BigEndian.Uint64(b[1:])), nil
	case tagBool:
		if len(b) != 2 {
			return nil, fmt.Errorf("streamlet: bad bool encoding")
		}
		return b[1] == 1, nil
	case tagBytes:
		return append([]byte(nil), b[1:]...), nil
	}
	return nil, fmt.Errorf("streamlet: unknown value tag %d", b[0])
}
