package streamlet

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"heron/api"
	"heron/internal/core"
	"heron/windows"
)

func identity(v any) any { return v }

func numbers(n int64) Supplier {
	var next int64
	return func() (any, bool) {
		if next >= n {
			return nil, false
		}
		next++
		return next - 1, true
	}
}

func componentNames(spec *api.Spec) []string {
	var out []string
	for _, c := range spec.Topology.Components {
		out = append(out, c.Name)
	}
	return out
}

func component(t *testing.T, spec *api.Spec, name string) *core.ComponentSpec {
	t.Helper()
	c := spec.Topology.Component(name)
	if c == nil {
		t.Fatalf("component %q missing (have %v)", name, componentNames(spec))
	}
	return c
}

// TestFusionLinearChain: a stateless chain fuses into the source spout;
// the terminal sink becomes the only bolt (shuffle-subscribed).
func TestFusionLinearChain(t *testing.T) {
	b := NewBuilder("fuse")
	b.Source("nums", numbers(10)).
		Map(func(v any) any { return v.(int64) * 2 }).
		Filter(func(v any) bool { return v.(int64) > 4 }).
		Consume(func(any) {}).WithName("out")
	spec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Topology.Components) != 2 {
		t.Fatalf("components = %v, want [nums out]", componentNames(spec))
	}
	src := component(t, spec, "nums")
	if src.Kind != core.KindSpout || len(src.Outputs["default"]) != 1 {
		t.Fatalf("source = %+v", src)
	}
	out := component(t, spec, "out")
	if len(out.Inputs) != 1 || out.Inputs[0].Grouping != core.GroupShuffle {
		t.Fatalf("sink inputs = %+v", out.Inputs)
	}
}

// TestFusionBreaksOnParallelism: a differing WithParallelism hint starts
// a new stage (the trailing sink then fuses into that new stage).
func TestFusionBreaksOnParallelism(t *testing.T) {
	b := NewBuilder("parbreak")
	b.Source("nums", numbers(10)).WithParallelism(1).
		Map(identity).WithName("wide").WithParallelism(3).
		Consume(func(any) {})
	spec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Topology.Components) != 2 {
		t.Fatalf("components = %v, want [nums wide]", componentNames(spec))
	}
	if component(t, spec, "wide").Parallelism != 3 {
		t.Fatal("parallelism hint lost")
	}
}

// TestFusionBreaksOnFanout: a streamlet consumed twice ends its stage;
// both consumers become separate shuffle-subscribed stages.
func TestFusionBreaksOnFanout(t *testing.T) {
	b := NewBuilder("fanout")
	src := b.Source("nums", numbers(10))
	src.Map(identity).WithName("a").Consume(func(any) {})
	src.Map(identity).WithName("b").Consume(func(any) {})
	spec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// nums; a (map+consume fused); b (map+consume fused).
	if len(spec.Topology.Components) != 3 {
		t.Fatalf("components = %v", componentNames(spec))
	}
	for _, name := range []string{"a", "b"} {
		in := component(t, spec, name).Inputs
		if len(in) != 1 || in[0].Component != "nums" || in[0].Grouping != core.GroupShuffle {
			t.Errorf("%s inputs = %+v", name, in)
		}
	}
}

// TestPlannerPicksPartialKeyForParallelReduce: an unwindowed reduce with
// parallelism > 1 compiles to partial (partial-key grouped) + merge
// (fields grouped) stages.
func TestPlannerPicksPartialKeyForParallelReduce(t *testing.T) {
	b := NewBuilder("twophase")
	b.Source("words", numbers(10)).
		KeyBy(identity).
		CountByKey().WithName("counts").WithParallelism(4).
		Log()
	spec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	partial := component(t, spec, "counts-partial")
	if partial.Parallelism != 4 {
		t.Errorf("partial parallelism = %d", partial.Parallelism)
	}
	if len(partial.Inputs) != 1 || partial.Inputs[0].Grouping != core.GroupPartialKey {
		t.Fatalf("partial inputs = %+v", partial.Inputs)
	}
	if f := partial.Outputs["default"]; len(f) != 3 || f[2] != "part" {
		t.Fatalf("partial outputs = %v", partial.Outputs)
	}
	merge := component(t, spec, "counts")
	if len(merge.Inputs) != 1 || merge.Inputs[0].Component != "counts-partial" ||
		merge.Inputs[0].Grouping != core.GroupFields {
		t.Fatalf("merge inputs = %+v", merge.Inputs)
	}
}

// TestPlannerSinglePhaseReduceAtPar1: with parallelism 1 the planner
// skips the two-phase split and fields-groups straight into one stage.
func TestPlannerSinglePhaseReduceAtPar1(t *testing.T) {
	b := NewBuilder("onephase")
	b.Source("words", numbers(10)).
		KeyBy(identity).
		CountByKey().WithName("counts").
		Log()
	spec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Topology.Component("counts-partial") != nil {
		t.Fatal("unexpected partial stage at parallelism 1")
	}
	counts := component(t, spec, "counts")
	if len(counts.Inputs) != 1 || counts.Inputs[0].Grouping != core.GroupFields {
		t.Fatalf("counts inputs = %+v", counts.Inputs)
	}
}

// TestPlannerFieldsForWindowedReduceAndJoin: windowed aggregations and
// joins need full key affinity, so the planner picks fields grouping.
func TestPlannerFieldsForWindowedReduceAndJoin(t *testing.T) {
	b := NewBuilder("windowed")
	left := b.Source("l", numbers(10)).KeyBy(identity)
	right := b.Source("r", numbers(10)).KeyBy(identity)
	left.ReduceByKeyAndWindow(windows.TumblingCount(5), func(a, v any) any { return a }).
		WithName("sums").WithParallelism(2).Log()
	left.Join(right, windows.Tumbling(time.Second), func(l, r any) any { return l }).
		WithName("joined").Log()
	spec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sums := component(t, spec, "sums")
	if len(sums.Inputs) != 1 || sums.Inputs[0].Grouping != core.GroupFields {
		t.Fatalf("sums inputs = %+v", sums.Inputs)
	}
	joined := component(t, spec, "joined")
	if len(joined.Inputs) != 2 {
		t.Fatalf("joined inputs = %+v", joined.Inputs)
	}
	for _, in := range joined.Inputs {
		if in.Grouping != core.GroupFields || len(in.FieldIdx) != 1 || in.FieldIdx[0] != 0 {
			t.Errorf("join input = %+v", in)
		}
	}
	if joined.TickEveryMs <= 0 {
		t.Error("time-windowed join got no tick interval")
	}
}

// TestUnionHeadsSharedStage: a union and its downstream chain become one
// bolt subscribed to both parents.
func TestUnionHeadsSharedStage(t *testing.T) {
	b := NewBuilder("union")
	a := b.Source("a", numbers(5))
	c := b.Source("c", numbers(5))
	a.Union(c).WithName("both").Map(identity).Consume(func(any) {})
	spec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Topology.Components) != 3 {
		t.Fatalf("components = %v", componentNames(spec))
	}
	both := component(t, spec, "both")
	if len(both.Inputs) != 2 {
		t.Fatalf("union inputs = %+v", both.Inputs)
	}
}

func TestBuildErrors(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		if _, err := NewBuilder("e").Build(); err == nil {
			t.Fatal("empty pipeline accepted")
		}
	})
	t.Run("nil-fns", func(t *testing.T) {
		b := NewBuilder("nils")
		b.Source("s", nil).Map(nil).Filter(nil).Consume(nil)
		_, err := b.Build()
		if err == nil {
			t.Fatal("nil functions accepted")
		}
		for _, want := range []string{"nil supplier", "nil function", "nil predicate"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error %v missing %q", err, want)
			}
		}
	})
	t.Run("mixed-union", func(t *testing.T) {
		b := NewBuilder("mix")
		plain := b.Source("p", numbers(1))
		keyed := b.Source("k", numbers(1)).KeyBy(identity)
		plain.Union(&Streamlet{b: b, n: keyed.n})
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "keyed and unkeyed") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("consume-after-sink", func(t *testing.T) {
		b := NewBuilder("sinkchain")
		s := b.Source("s", numbers(1)).Consume(func(any) {})
		s.Map(identity)
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "sink terminates") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("self-join", func(t *testing.T) {
		b := NewBuilder("selfjoin")
		k := b.Source("s", numbers(1)).KeyBy(identity)
		k.Join(k, windows.TumblingCount(2), func(l, r any) any { return l })
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "distinct stages") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("bad-window", func(t *testing.T) {
		b := NewBuilder("badwin")
		b.Source("s", numbers(1)).KeyBy(identity).
			ReduceByKeyAndWindow(windows.Config{}, func(a, v any) any { return a })
		if _, err := b.Build(); err == nil {
			t.Fatal("empty window config accepted")
		}
	})
}

// --- runtime (bolt-level) tests ----------------------------------------

type testTuple struct {
	vals api.Values
	src  string
}

func (f *testTuple) Values() api.Values      { return f.vals }
func (f *testTuple) SourceComponent() string { return f.src }
func (f *testTuple) Stream() string          { return "default" }
func (f *testTuple) String(i int) string     { return f.vals[i].(string) }
func (f *testTuple) Int(i int) int64         { return f.vals[i].(int64) }
func (f *testTuple) Float(i int) float64     { return f.vals[i].(float64) }
func (f *testTuple) Bool(i int) bool         { return f.vals[i].(bool) }
func (f *testTuple) Bytes(i int) []byte      { return f.vals[i].([]byte) }

type testCollector struct {
	emitted [][]any
	acked   int
}

func (c *testCollector) Emit(_ string, _ []api.Tuple, values ...any) {
	c.emitted = append(c.emitted, append([]any(nil), values...))
}
func (c *testCollector) Ack(api.Tuple)  { c.acked++ }
func (c *testCollector) Fail(api.Tuple) {}

func TestChainBoltRuns(t *testing.T) {
	b := NewBuilder("chain")
	// Differing parallelism keeps the chain out of the spout stage so it
	// compiles to an inspectable bolt.
	src := b.Source("s", numbers(1)).WithParallelism(1)
	src.Map(func(v any) any { return v.(int64) + 100 }).WithName("head").WithParallelism(2).
		FlatMap(func(v any) []any { return []any{v, v} }).
		Filter(func(v any) bool { return v.(int64)%2 == 0 }).
		KeyBy(func(v any) any { return fmt.Sprint(v) })
	spec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	bolt := spec.Bolts["head"]()
	col := &testCollector{}
	if err := bolt.Prepare(nil, col); err != nil {
		t.Fatal(err)
	}
	if err := bolt.Execute(&testTuple{vals: api.Values{int64(2)}, src: "s"}); err != nil {
		t.Fatal(err)
	}
	// 2 → 102 → [102 102] → both even → keyed ("102", 102) twice.
	if len(col.emitted) != 2 || col.acked != 1 {
		t.Fatalf("emitted = %v acked = %d", col.emitted, col.acked)
	}
	for _, e := range col.emitted {
		if len(e) != 2 || e[0] != "102" || e[1] != int64(102) {
			t.Errorf("emission = %v", e)
		}
	}
}

func TestReduceBoltsAndState(t *testing.T) {
	b := NewBuilder("red")
	b.Source("s", numbers(1)).KeyBy(identity).
		CountByKey().WithName("counts").WithParallelism(2).Log()
	spec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	partial := spec.Bolts["counts-partial"]()
	col := &testCollector{}
	if err := partial.Prepare(nil, col); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := partial.Execute(&testTuple{vals: api.Values{"w", int64(7)}}); err != nil {
			t.Fatal(err)
		}
	}
	last := col.emitted[len(col.emitted)-1]
	if len(last) != 3 || last[0] != "w" || last[1] != int64(3) || last[2] != int64(0) {
		t.Fatalf("partial emission = %v", last)
	}

	merge := spec.Bolts["counts"]()
	mcol := &testCollector{}
	if err := merge.Prepare(nil, mcol); err != nil {
		t.Fatal(err)
	}
	// Partials from two parts: latest per part combine.
	feed := [][]any{
		{"w", int64(3), int64(0)},
		{"w", int64(2), int64(1)},
		{"w", int64(4), int64(0)}, // part 0 updates 3→4
	}
	for _, vs := range feed {
		if err := merge.Execute(&testTuple{vals: vs}); err != nil {
			t.Fatal(err)
		}
	}
	want := [][]any{{"w", int64(3)}, {"w", int64(5)}, {"w", int64(6)}}
	if len(mcol.emitted) != len(want) {
		t.Fatalf("merge emissions = %v", mcol.emitted)
	}
	for i := range want {
		if mcol.emitted[i][0] != want[i][0] || mcol.emitted[i][1] != want[i][1] {
			t.Errorf("merge emission %d = %v, want %v", i, mcol.emitted[i], want[i])
		}
	}

	// Checkpoint round-trip: save the merge bolt, restore into a fresh
	// one, and check the next update continues from the merged state.
	st := newMapState()
	if err := merge.(api.StatefulComponent).SaveState(st); err != nil {
		t.Fatal(err)
	}
	merge2 := spec.Bolts["counts"]()
	m2col := &testCollector{}
	if err := merge2.Prepare(nil, m2col); err != nil {
		t.Fatal(err)
	}
	if err := merge2.(api.StatefulComponent).RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if err := merge2.Execute(&testTuple{vals: []any{"w", int64(3), int64(1)}}); err != nil {
		t.Fatal(err)
	}
	if got := m2col.emitted[0]; got[1] != int64(7) { // part0=4 + part1=3
		t.Fatalf("post-restore emission = %v, want count 7", got)
	}

	// Partial bolt state round-trips too.
	pst := newMapState()
	if err := partial.(api.StatefulComponent).SaveState(pst); err != nil {
		t.Fatal(err)
	}
	partial2 := spec.Bolts["counts-partial"]()
	p2col := &testCollector{}
	if err := partial2.Prepare(nil, p2col); err != nil {
		t.Fatal(err)
	}
	if err := partial2.(api.StatefulComponent).RestoreState(pst); err != nil {
		t.Fatal(err)
	}
	if err := partial2.Execute(&testTuple{vals: api.Values{"w", int64(7)}}); err != nil {
		t.Fatal(err)
	}
	if got := p2col.emitted[0]; got[1] != int64(4) {
		t.Fatalf("post-restore partial = %v, want count 4", got)
	}
}

// mapState is an in-memory api.State for checkpoint round-trip tests.
type mapState struct{ m map[string][]byte }

func newMapState() *mapState { return &mapState{m: map[string][]byte{}} }

func (s *mapState) Set(k string, v []byte) { s.m[k] = append([]byte(nil), v...) }
func (s *mapState) Get(k string) []byte    { return s.m[k] }
func (s *mapState) Delete(k string)        { delete(s.m, k) }
func (s *mapState) Len() int               { return len(s.m) }
func (s *mapState) Range(fn func(k string, v []byte) bool) {
	for k, v := range s.m {
		if !fn(k, v) {
			return
		}
	}
}

func TestWindowReduceBolt(t *testing.T) {
	b := NewBuilder("winred")
	b.Source("s", numbers(1)).KeyBy(identity).
		ReduceByKeyAndWindow(windows.TumblingCount(4), func(a, v any) any {
			return a.(int64) + v.(int64)
		}).WithName("sums").Log()
	spec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	bolt := spec.Bolts["sums"]()
	col := &testCollector{}
	if err := bolt.Prepare(nil, col); err != nil {
		t.Fatal(err)
	}
	for _, kv := range [][]any{{"a", int64(1)}, {"b", int64(10)}, {"a", int64(2)}, {"b", int64(20)}} {
		if err := bolt.Execute(&testTuple{vals: kv}); err != nil {
			t.Fatal(err)
		}
	}
	if len(col.emitted) != 2 {
		t.Fatalf("emissions = %v", col.emitted)
	}
	got := map[any]any{col.emitted[0][0]: col.emitted[0][1], col.emitted[1][0]: col.emitted[1][1]}
	if got["a"] != int64(3) || got["b"] != int64(30) {
		t.Fatalf("window sums = %v", got)
	}
}

func TestJoinBolt(t *testing.T) {
	b := NewBuilder("join")
	l := b.Source("l", numbers(1)).KeyBy(identity)
	r := b.Source("r", numbers(1)).KeyBy(identity)
	l.Join(r, windows.TumblingCount(4), func(lv, rv any) any {
		return lv.(int64)*100 + rv.(int64)
	}).WithName("joined").Log()
	spec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	bolt := spec.Bolts["joined"]()
	col := &testCollector{}
	if err := bolt.Prepare(nil, col); err != nil {
		t.Fatal(err)
	}
	feed := []*testTuple{
		{vals: []any{"k", int64(1)}, src: "l"},
		{vals: []any{"k", int64(2)}, src: "r"},
		{vals: []any{"x", int64(9)}, src: "l"}, // no right side: no output
		{vals: []any{"k", int64(3)}, src: "l"},
	}
	for _, tp := range feed {
		if err := bolt.Execute(tp); err != nil {
			t.Fatal(err)
		}
	}
	// Window of 4: key k has lefts {1,3} × rights {2} → 102, 302.
	if len(col.emitted) != 2 {
		t.Fatalf("join emissions = %v", col.emitted)
	}
	got := map[any]bool{col.emitted[0][1]: true, col.emitted[1][1]: true}
	if !got[int64(102)] || !got[int64(302)] {
		t.Fatalf("join results = %v", col.emitted)
	}
}

func TestValueCodecRoundTrip(t *testing.T) {
	for _, v := range []any{"hello", int64(-42), 3.5, true, false, []byte{1, 2, 3}} {
		got, err := decodeValue(encodeValue(v))
		if err != nil {
			t.Fatalf("%T: %v", v, err)
		}
		switch want := v.(type) {
		case []byte:
			if string(got.([]byte)) != string(want) {
				t.Errorf("bytes round-trip = %v", got)
			}
		default:
			if got != v {
				t.Errorf("%T round-trip = %v, want %v", v, got, v)
			}
		}
	}
	if _, err := decodeValue(nil); err == nil {
		t.Error("empty encoding accepted")
	}
	if _, err := decodeValue([]byte{99}); err == nil {
		t.Error("unknown tag accepted")
	}
	// Distinct types never collide as map keys.
	if string(encodeValue("1")) == string(encodeValue(int64(49))) {
		t.Error("string/int encodings collide")
	}
}

// BenchmarkStreamletCompile measures planning + compilation of a
// realistic pipeline (two sources, fused chains, a two-phase reduce, a
// windowed join).
func BenchmarkStreamletCompile(b *testing.B) {
	build := func() (*api.Spec, error) {
		sb := NewBuilder("bench")
		clicks := sb.Source("clicks", numbers(1)).
			Map(identity).
			Filter(func(v any) bool { return true }).
			KeyBy(identity)
		views := sb.Source("views", numbers(1)).KeyBy(identity)
		clicks.CountByKey().WithName("counts").WithParallelism(4).Log()
		clicks.Join(views, windows.Tumbling(time.Second), func(l, r any) any { return l }).
			WithName("joined").
			MapValues(func(k, v any) any { return v }).
			Log()
		return sb.Build()
	}
	if _, err := build(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := build(); err != nil {
			b.Fatal(err)
		}
	}
}
