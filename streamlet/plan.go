package streamlet

import (
	"errors"
	"fmt"

	"heron/api"
)

// stage is one physical component of the compiled plan: a maximal fused
// chain of DSL operations (spout stages start at a source; bolt stages at
// any other head). Aggregations and joins close their stage — nothing
// fuses after them.
type stage struct {
	head  *node
	chain []*node // head first
	par   int
	// partialOf marks the synthetic partial stage of a two-phase reduce.
	partialOf *node
}

func (s *stage) name() string {
	if s.partialOf != nil {
		return s.partialOf.name + "-partial"
	}
	return s.head.name
}

func (s *stage) tail() *node { return s.chain[len(s.chain)-1] }

// outFields returns the stage's output stream fields, or nil for
// terminal (sink-ended) stages.
func (s *stage) outFields() []string {
	if s.partialOf != nil {
		return []string{"key", "value", "part"}
	}
	t := s.tail()
	if t.kind == opSink {
		return nil
	}
	if t.kv {
		return []string{"key", "value"}
	}
	return []string{"value"}
}

// fusible reports whether kinds may continue an existing fused chain.
func fusible(k opKind) bool {
	switch k {
	case opMap, opFlatMap, opFilter, opTransform, opKeyBy, opSink:
		return true
	}
	return false
}

// closesStage reports whether a node must be the last in its stage.
func closesStage(k opKind) bool {
	switch k {
	case opReduce, opWindowReduce, opJoin:
		return true
	}
	return false
}

// Build plans the pipeline and compiles it onto api.TopologyBuilder,
// returning the Spec to submit with heron.Submit. Planning: stateless
// linear chains fuse into single stages; every aggregation picks its own
// distribution strategy (see package comment).
func (b *Builder) Build() (*api.Spec, error) {
	errs := append([]error(nil), b.errs...)
	if len(b.nodes) == 0 {
		errs = append(errs, errors.New("streamlet: empty pipeline: declare at least one Source"))
	}
	for _, n := range b.nodes {
		if n.kind == opSink && len(n.consumers) > 0 {
			errs = append(errs, fmt.Errorf("streamlet: %s: a sink terminates its streamlet; nothing can consume it", n.name))
		}
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}

	// Phase 1: fuse nodes into stages. Nodes are id-ordered, which is
	// topological (parents precede consumers), so each node's parent stage
	// is already decided when the node is visited.
	stageOf := map[*node]*stage{}
	var stages []*stage
	for _, n := range b.nodes {
		if len(n.parents) == 1 && fusible(n.kind) && !closesStage(n.parents[0].kind) {
			p := n.parents[0]
			ps := stageOf[p]
			// A sink never fuses into a spout stage: spouts must produce a
			// stream, so the sink heads a bolt of its own.
			if ps.tail() == p && len(p.consumers) == 1 &&
				!(n.kind == opSink && ps.head.kind == opSource) &&
				(n.par == 0 || ps.par == 0 || n.par == ps.par) {
				ps.chain = append(ps.chain, n)
				if ps.par == 0 {
					ps.par = n.par
				}
				stageOf[n] = ps
				continue
			}
		}
		s := &stage{head: n, chain: []*node{n}, par: n.par}
		stages = append(stages, s)
		stageOf[n] = s
	}
	for _, s := range stages {
		if s.par == 0 {
			s.par = 1
		}
	}
	// A join's sides must come from distinct stages: the join bolt tells
	// left from right by source component.
	for _, n := range b.nodes {
		if n.kind == opJoin && stageOf[n.parents[0]] == stageOf[n.parents[1]] {
			return nil, fmt.Errorf("streamlet: %s: join sides must come from distinct stages (self-joins are not supported)", n.name)
		}
	}

	// Phase 2: split skew-prone reduces into partial + merge stages when
	// they run with parallelism > 1. The partial stage is partial-key
	// grouped (two-choice rebalancing); the merge stage combines each
	// key's ≤ 2 partial aggregates under plain fields grouping.
	partialStage := map[*node]*stage{}
	for _, n := range b.nodes {
		if n.kind == opReduce && stageOf[n].par > 1 {
			ps := &stage{head: n, chain: []*node{n}, par: stageOf[n].par, partialOf: n}
			partialStage[n] = ps
			stages = append(stages, ps)
		}
	}

	// Phase 3: compile stages onto the low-level builder.
	tb := api.NewTopologyBuilder(b.name)
	for _, s := range stages {
		s := s
		switch {
		case s.head.kind == opSource:
			d := tb.SetSpout(s.name(), func() api.Spout { return newSupplierSpout(s) }, s.par)
			if f := s.outFields(); f != nil {
				d.OutputFields(f...)
			}
		case s.partialOf != nil:
			d := tb.SetBolt(s.name(), func() api.Bolt { return newPartialReduceBolt(s.partialOf) }, s.par)
			d.OutputFields(s.outFields()...)
			p := stageOf[s.head.parents[0]]
			d.PartialKeyGrouping(p.name(), "", "key")
		case s.head.kind == opReduce:
			n := s.head
			if ps, ok := partialStage[n]; ok {
				// Merge stage of the two-phase reduce.
				d := tb.SetBolt(s.name(), func() api.Bolt { return newMergeReduceBolt(n) }, s.par)
				d.OutputFields(s.outFields()...)
				d.FieldsGrouping(ps.name(), "", "key")
			} else {
				d := tb.SetBolt(s.name(), func() api.Bolt { return newSingleReduceBolt(n) }, s.par)
				d.OutputFields(s.outFields()...)
				d.FieldsGrouping(stageOf[n.parents[0]].name(), "", "key")
			}
		case s.head.kind == opWindowReduce:
			n := s.head
			d := tb.SetBolt(s.name(), func() api.Bolt { return newWindowReduceBolt(n) }, s.par)
			d.OutputFields(s.outFields()...)
			d.FieldsGrouping(stageOf[n.parents[0]].name(), "", "key")
			if t := n.window.TickPeriod(); t > 0 {
				d.TickEvery(t)
			}
		case s.head.kind == opJoin:
			n := s.head
			left, right := stageOf[n.parents[0]].name(), stageOf[n.parents[1]].name()
			d := tb.SetBolt(s.name(), func() api.Bolt { return newJoinBolt(n, left, right) }, s.par)
			d.OutputFields(s.outFields()...)
			d.FieldsGrouping(left, "", "key")
			if right != left {
				d.FieldsGrouping(right, "", "key")
			}
			if t := n.window.TickPeriod(); t > 0 {
				d.TickEvery(t)
			}
		default:
			// Fused stateless chain (possibly headed by a union): shuffle
			// from every distinct parent stage.
			d := tb.SetBolt(s.name(), func() api.Bolt { return newChainBolt(s) }, s.par)
			if f := s.outFields(); f != nil {
				d.OutputFields(f...)
			}
			seen := map[string]bool{}
			for _, p := range s.head.parents {
				pn := stageOf[p].name()
				if !seen[pn] {
					seen[pn] = true
					d.ShuffleGrouping(pn, "")
				}
			}
		}
	}
	spec, err := tb.Build()
	if err != nil {
		return nil, fmt.Errorf("streamlet: %w", err)
	}
	return spec, nil
}

// Stages returns the planned stage names in compile order with their
// parallelism — primarily for tests and tooling that want to inspect the
// fusion result without building a Spec.
func (b *Builder) Stages() ([]string, error) {
	spec, err := b.Build()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, c := range spec.Topology.Components {
		out = append(out, fmt.Sprintf("%s/%d", c.Name, c.Parallelism))
	}
	return out, nil
}
