// Package streamlet is the high-level, functional topology API: instead
// of writing spouts and bolts by hand, a pipeline is declared as a chain
// of typed transformations over streamlets (unbounded streams of
// elements), and Build compiles the chain onto api.TopologyBuilder — so
// every engine feature (acking, checkpointing, metrics, runtime
// rescaling) works unchanged underneath.
//
//	b := streamlet.NewBuilder("trending")
//	b.Source("words", wordGen).
//	    FlatMap(splitWords).WithParallelism(2).
//	    KeyBy(identity).
//	    CountByKey().WithParallelism(4).
//	    Log()
//	spec, err := b.Build()
//	h, err := heron.Submit(spec, cfg)
//
// The planner fuses stateless linear chains into single components,
// names the resulting stages, and picks a distribution strategy for
// every edge: shuffle into stateless stages, two-choice partial-key into
// skew-prone reduce stages (with an automatic merge stage combining the
// per-task partials), and fields grouping into windowed aggregations and
// joins, which need full key affinity. The low-level api.TopologyBuilder
// remains the escape hatch when a topology needs explicit wiring.
//
// Elements travelling between stages must be wire types (string, int64,
// float64, bool, []byte); keyed streams carry (key, value) pairs of wire
// types. Within a fused chain any Go value may flow.
package streamlet

import (
	"fmt"
	"log"

	"heron/api"
	"heron/windows"
)

// KeyValue is one element of a keyed streamlet.
type KeyValue struct {
	Key, Value any
}

// Supplier produces source elements: it returns the next element and
// true, or false when no input is currently available (the engine backs
// off briefly and retries).
type Supplier func() (any, bool)

// Transformer is a stateful per-instance operator: Setup runs once with
// the instance's TopologyContext, Transform maps each element to zero or
// more outputs through emit.
type Transformer interface {
	Setup(ctx api.TopologyContext) error
	Transform(v any, emit func(any)) error
}

// Sink terminates a streamlet in user code (databases, files, ...).
type Sink interface {
	Setup(ctx api.TopologyContext) error
	Receive(v any) error
}

// Builder assembles a streamlet pipeline; Build compiles it to a Spec.
type Builder struct {
	name  string
	nodes []*node
	errs  []error
}

// NewBuilder starts a pipeline named name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

// Source adds a source streamlet fed by gen. name seeds the stage name.
func (b *Builder) Source(name string, gen Supplier) *Streamlet {
	if gen == nil {
		b.errs = append(b.errs, fmt.Errorf("streamlet: source %q has nil supplier", name))
	}
	n := b.add(&node{kind: opSource, name: name, gen: gen})
	return &Streamlet{b: b, n: n}
}

func (b *Builder) add(n *node) *node {
	n.id = len(b.nodes)
	if n.name == "" {
		n.name = fmt.Sprintf("%s-%d", n.kind, n.id)
	}
	b.nodes = append(b.nodes, n)
	for _, p := range n.parents {
		p.consumers = append(p.consumers, n)
	}
	return n
}

func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf("streamlet: "+format, args...))
}

// Streamlet is an unbounded stream of elements.
type Streamlet struct {
	b *Builder
	n *node
}

// WithParallelism hints how many tasks run the operation that produced
// this streamlet. Stages inherit the hint of their first operation;
// operations with a different hint start a new stage.
func (s *Streamlet) WithParallelism(par int) *Streamlet {
	if par <= 0 {
		s.b.errf("%s: parallelism %d must be positive", s.n.name, par)
		return s
	}
	s.n.par = par
	return s
}

// WithName renames the operation (and the stage it heads, if any).
func (s *Streamlet) WithName(name string) *Streamlet {
	if name != "" {
		s.n.name = name
	}
	return s
}

// Map transforms each element one-to-one.
func (s *Streamlet) Map(fn func(v any) any) *Streamlet {
	if fn == nil {
		s.b.errf("%s: Map with nil function", s.n.name)
		return s
	}
	n := s.b.add(&node{kind: opMap, parents: []*node{s.n}, kv: s.n.kv, mapFn: fn})
	return &Streamlet{b: s.b, n: n}
}

// FlatMap transforms each element into zero or more elements.
func (s *Streamlet) FlatMap(fn func(v any) []any) *Streamlet {
	if fn == nil {
		s.b.errf("%s: FlatMap with nil function", s.n.name)
		return s
	}
	n := s.b.add(&node{kind: opFlatMap, parents: []*node{s.n}, kv: s.n.kv, flatMapFn: fn})
	return &Streamlet{b: s.b, n: n}
}

// Filter keeps the elements fn accepts.
func (s *Streamlet) Filter(fn func(v any) bool) *Streamlet {
	if fn == nil {
		s.b.errf("%s: Filter with nil predicate", s.n.name)
		return s
	}
	n := s.b.add(&node{kind: opFilter, parents: []*node{s.n}, kv: s.n.kv, filterFn: fn})
	return &Streamlet{b: s.b, n: n}
}

// Transform applies a stateful per-instance operator (see Transformer).
// factory builds one Transformer per task.
func (s *Streamlet) Transform(factory func() Transformer) *Streamlet {
	if factory == nil {
		s.b.errf("%s: Transform with nil factory", s.n.name)
		return s
	}
	n := s.b.add(&node{kind: opTransform, parents: []*node{s.n}, kv: s.n.kv, transformF: factory})
	return &Streamlet{b: s.b, n: n}
}

// Union merges this streamlet with other: the result carries the
// elements of both. Both sides must be keyed or both unkeyed.
func (s *Streamlet) Union(other *Streamlet) *Streamlet {
	if other == nil {
		s.b.errf("%s: Union with nil streamlet", s.n.name)
		return s
	}
	if other.b != s.b {
		s.b.errf("%s: Union across builders", s.n.name)
		return s
	}
	if other.n.kv != s.n.kv {
		s.b.errf("%s: Union of keyed and unkeyed streamlets", s.n.name)
		return s
	}
	n := s.b.add(&node{kind: opUnion, parents: []*node{s.n, other.n}, kv: s.n.kv})
	return &Streamlet{b: s.b, n: n}
}

// Sink terminates the streamlet in the given sink. factory builds one
// Sink per task.
func (s *Streamlet) Sink(factory func() Sink) *Streamlet {
	if factory == nil {
		s.b.errf("%s: Sink with nil factory", s.n.name)
		return s
	}
	n := s.b.add(&node{kind: opSink, parents: []*node{s.n}, kv: s.n.kv, sinkF: factory})
	return &Streamlet{b: s.b, n: n}
}

// Consume terminates the streamlet in fn, called once per element.
func (s *Streamlet) Consume(fn func(v any)) *Streamlet {
	if fn == nil {
		s.b.errf("%s: Consume with nil function", s.n.name)
		return s
	}
	n := s.b.add(&node{kind: opSink, parents: []*node{s.n}, kv: s.n.kv, consumeFn: fn})
	return &Streamlet{b: s.b, n: n}
}

// Log terminates the streamlet by logging every element.
func (s *Streamlet) Log() *Streamlet {
	pipeline := s.b.name
	return s.Consume(func(v any) { log.Printf("[streamlet/%s] %v", pipeline, v) })
}

// KeyBy turns the streamlet into a keyed streamlet: key extracts each
// element's key (a wire type); the element itself becomes the value.
func (s *Streamlet) KeyBy(key func(v any) any) *KeyedStreamlet {
	return s.KeyValueBy(key, nil)
}

// KeyValueBy is KeyBy with an explicit value extractor (nil keeps the
// element as the value).
func (s *Streamlet) KeyValueBy(key, value func(v any) any) *KeyedStreamlet {
	if key == nil {
		s.b.errf("%s: KeyBy with nil key extractor", s.n.name)
		key = func(v any) any { return v }
	}
	n := s.b.add(&node{kind: opKeyBy, parents: []*node{s.n}, kv: true, keyFn: key, valueFn: value})
	return &KeyedStreamlet{b: s.b, n: n}
}

// KeyedStreamlet is an unbounded stream of KeyValue elements.
type KeyedStreamlet struct {
	b *Builder
	n *node
}

// WithParallelism hints the parallelism of the producing operation.
func (s *KeyedStreamlet) WithParallelism(par int) *KeyedStreamlet {
	(&Streamlet{b: s.b, n: s.n}).WithParallelism(par)
	return s
}

// WithName renames the producing operation.
func (s *KeyedStreamlet) WithName(name string) *KeyedStreamlet {
	(&Streamlet{b: s.b, n: s.n}).WithName(name)
	return s
}

// MapValues transforms each element's value, keeping its key.
func (s *KeyedStreamlet) MapValues(fn func(key, value any) any) *KeyedStreamlet {
	if fn == nil {
		s.b.errf("%s: MapValues with nil function", s.n.name)
		return s
	}
	mapped := (&Streamlet{b: s.b, n: s.n}).Map(func(v any) any {
		kv := v.(KeyValue)
		return KeyValue{Key: kv.Key, Value: fn(kv.Key, kv.Value)}
	})
	return &KeyedStreamlet{b: s.b, n: mapped.n}
}

// Filter keeps the pairs fn accepts.
func (s *KeyedStreamlet) Filter(fn func(key, value any) bool) *KeyedStreamlet {
	if fn == nil {
		s.b.errf("%s: Filter with nil predicate", s.n.name)
		return s
	}
	filtered := (&Streamlet{b: s.b, n: s.n}).Filter(func(v any) bool {
		kv := v.(KeyValue)
		return fn(kv.Key, kv.Value)
	})
	return &KeyedStreamlet{b: s.b, n: filtered.n}
}

// Values drops the keys, yielding a plain streamlet of the values.
func (s *KeyedStreamlet) Values() *Streamlet {
	mapped := (&Streamlet{b: s.b, n: s.n}).Map(func(v any) any { return v.(KeyValue).Value })
	mapped.n.kv = false
	return mapped
}

// Consume terminates the keyed streamlet in fn.
func (s *KeyedStreamlet) Consume(fn func(kv KeyValue)) *KeyedStreamlet {
	if fn == nil {
		s.b.errf("%s: Consume with nil function", s.n.name)
		return s
	}
	sunk := (&Streamlet{b: s.b, n: s.n}).Consume(func(v any) { fn(v.(KeyValue)) })
	return &KeyedStreamlet{b: s.b, n: sunk.n}
}

// Log terminates the keyed streamlet by logging every pair.
func (s *KeyedStreamlet) Log() *KeyedStreamlet {
	pipeline := s.b.name
	return s.Consume(func(kv KeyValue) {
		log.Printf("[streamlet/%s] %v=%v", pipeline, kv.Key, kv.Value)
	})
}

// ReduceByKey continuously folds each key's values with reduce,
// re-emitting the key's running aggregate after every element. reduce
// must be associative and commutative: when the stage runs with
// parallelism > 1, the planner splits it into a partial-key-grouped
// partial stage (two-choice rebalancing, so skewed keys can't hot-spot a
// task) and a fields-grouped merge stage that combines each key's ≤ 2
// partial aggregates with the same function.
func (s *KeyedStreamlet) ReduceByKey(reduce func(a, b any) any) *KeyedStreamlet {
	if reduce == nil {
		s.b.errf("%s: ReduceByKey with nil function", s.n.name)
		return s
	}
	n := s.b.add(&node{kind: opReduce, parents: []*node{s.n}, kv: true, reduceFn: reduce, mergeFn: reduce})
	return &KeyedStreamlet{b: s.b, n: n}
}

// CountByKey continuously counts elements per key, re-emitting the
// running int64 count after every element (a skew-tolerant two-phase
// reduce, like ReduceByKey).
func (s *KeyedStreamlet) CountByKey() *KeyedStreamlet {
	n := s.b.add(&node{
		kind: opReduce, parents: []*node{s.n}, kv: true,
		reduceFn: func(a, _ any) any { return a.(int64) + 1 },
		mergeFn:  func(a, b any) any { return a.(int64) + b.(int64) },
		seedFn:   func(any) any { return int64(1) },
	})
	return &KeyedStreamlet{b: s.b, n: n}
}

// ReduceByKeyAndWindow folds each key's values within every window
// described by w, emitting one (key, aggregate) pair per key per
// completed window. The stage is fields-grouped so each key's whole
// window lands on one task. Time windows require only that the pipeline
// runs; ticks are declared automatically.
func (s *KeyedStreamlet) ReduceByKeyAndWindow(w windows.Config, reduce func(a, b any) any) *KeyedStreamlet {
	if reduce == nil {
		s.b.errf("%s: ReduceByKeyAndWindow with nil function", s.n.name)
		return s
	}
	if err := w.Validate(); err != nil {
		s.b.errs = append(s.b.errs, fmt.Errorf("streamlet: %s: %w", s.n.name, err))
	}
	n := s.b.add(&node{kind: opWindowReduce, parents: []*node{s.n}, kv: true, reduceFn: reduce, window: w})
	return &KeyedStreamlet{b: s.b, n: n}
}

// Join inner-joins this keyed streamlet with other over the window w:
// for every key with elements on both sides within the same window, fn
// is called with each (left, right) value pair and its results are
// emitted keyed by the join key.
func (s *KeyedStreamlet) Join(other *KeyedStreamlet, w windows.Config, fn func(left, right any) any) *KeyedStreamlet {
	if other == nil || fn == nil {
		s.b.errf("%s: Join needs a right side and a join function", s.n.name)
		return s
	}
	if other.b != s.b {
		s.b.errf("%s: Join across builders", s.n.name)
		return s
	}
	if err := w.Validate(); err != nil {
		s.b.errs = append(s.b.errs, fmt.Errorf("streamlet: %s: %w", s.n.name, err))
	}
	n := s.b.add(&node{kind: opJoin, parents: []*node{s.n, other.n}, kv: true, joinFn: fn, window: w})
	return &KeyedStreamlet{b: s.b, n: n}
}

// opKind enumerates the DSL's operation node types.
type opKind int

const (
	opSource opKind = iota
	opMap
	opFlatMap
	opFilter
	opTransform
	opUnion
	opKeyBy
	opSink
	opReduce
	opWindowReduce
	opJoin
)

func (k opKind) String() string {
	switch k {
	case opSource:
		return "source"
	case opMap:
		return "map"
	case opFlatMap:
		return "flatmap"
	case opFilter:
		return "filter"
	case opTransform:
		return "transform"
	case opUnion:
		return "union"
	case opKeyBy:
		return "keyby"
	case opSink:
		return "sink"
	case opReduce:
		return "reduce"
	case opWindowReduce:
		return "window-reduce"
	case opJoin:
		return "join"
	}
	return "op"
}

// node is one DSL operation in the pipeline graph.
type node struct {
	id        int
	kind      opKind
	name      string
	par       int // 0 = inherit
	kv        bool
	parents   []*node
	consumers []*node

	gen        Supplier
	mapFn      func(any) any
	flatMapFn  func(any) []any
	filterFn   func(any) bool
	transformF func() Transformer
	sinkF      func() Sink
	consumeFn  func(any)
	keyFn      func(any) any
	valueFn    func(any) any
	reduceFn   func(a, b any) any
	mergeFn    func(a, b any) any // combines partial aggregates
	seedFn     func(v any) any    // first aggregate for a key (nil: the value)
	joinFn     func(l, r any) any
	window     windows.Config
}
