package heron

import (
	"fmt"
	"testing"
	"time"

	"heron/internal/extsvc/kafkasim"
	"heron/internal/extsvc/redissim"
	"heron/internal/workloads"
)

// TestETLEndToEndExactAggregates runs the Section VI-D pipeline over a
// bounded, deterministic Kafka log and verifies the Redis aggregates are
// EXACTLY the sums of the filtered events — full-pipeline correctness
// (consume, decompress, parse, filter, hash-partition, aggregate, write)
// with no tolerance.
func TestETLEndToEndExactAggregates(t *testing.T) {
	const (
		partitions = 4
		perPart    = 2000
		users      = 37
	)
	broker := kafkasim.NewBroker(partitions)
	types := []string{"click", "view", "scroll", "hover"}
	expected := map[string]int64{} // "agg:u<user>" → sum of click amounts
	var clickEvents int64
	broker.Preload(perPart, func(part, i int) ([]byte, []byte) {
		et := types[i%len(types)]
		user := (part*perPart + i) % users
		amount := int64(i%97) + 1
		if et == "click" {
			expected[fmt.Sprintf("agg:u%d", user)] += amount
			clickEvents++
		}
		return []byte(fmt.Sprintf("k%d", i)), workloads.EventValue(user, et, amount)
	})
	redis := redissim.NewServer(4)

	spec, timers, err := workloads.BuildETL(workloads.ETLOptions{
		Name:   "etl-exact",
		Broker: broker, Redis: redis,
		Spouts: 2, Filters: 2, Aggregators: 2,
		FlushEvery:  1, // write-through: Redis converges without a kill
		OnceThrough: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t)
	h, err := Submit(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Kill()
	if err := h.WaitRunning(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	total := int64(partitions * perPart)
	waitFor(t, 120*time.Second, "all events consumed", func() bool {
		return timers.Events.Load() >= total
	})
	// Every expected key must converge to its exact sum.
	waitFor(t, 120*time.Second, "aggregates converged", func() bool {
		for key, want := range expected {
			if got, _ := redis.Get(key); got != want {
				return false
			}
		}
		return true
	})
	if got := redis.Keys(); got != len(expected) {
		t.Errorf("redis keys = %d, want %d", got, len(expected))
	}
	t.Logf("verified %d aggregate keys over %d click events (of %d total)",
		len(expected), clickEvents, total)
}
