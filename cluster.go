package heron

import (
	"errors"
	"fmt"
	"sync"

	"heron/api"
	"heron/internal/core"
	"heron/internal/metrics"
	"heron/internal/multitenant"
	"heron/internal/observability"
)

// Quota re-exports the per-tenant resource quota (zero dimensions are
// unlimited).
type Quota = multitenant.Quota

// TenantStatus re-exports one tenant's accounting snapshot.
type TenantStatus = multitenant.TenantStatus

// Sentinel errors of the multi-tenant admission path, re-exported for
// errors.Is matching.
var (
	ErrUnknownTenant     = multitenant.ErrUnknownTenant
	ErrDuplicateTopology = multitenant.ErrDuplicateTopology
	ErrQuotaExceeded     = multitenant.ErrQuotaExceeded
	ErrUnknownTopology   = multitenant.ErrUnknownTopology
)

// ClusterConfig sizes a shared multi-tenant cluster.
type ClusterConfig struct {
	// Name identifies the cluster; it namespaces the shared state tree, so
	// two live clusters in one process need distinct names.
	Name string
	// Nodes is the simulated node count (default 4).
	Nodes int
	// NodeResources is each node's capacity (default 64 CPU, 64 GB RAM,
	// 64 GB disk).
	NodeResources Resource
	// HTTPAddr, when set, starts the shared observability endpoint serving
	// every tenant's topologies ("127.0.0.1:0" picks a free port).
	HTTPAddr string
	// HTTPPprof mounts net/http/pprof on the shared endpoint.
	HTTPPprof bool
}

// Cluster is a shared substrate running many topologies from many
// tenants concurrently: one simulated node pool, per-tenant resource
// quotas enforced at admission and rescale, fair cross-tenant container
// placement, and a single observability endpoint. This is the paper's
// premise — topologies as tenants of a general-purpose scheduled cluster
// — promoted from the one-topology-per-framework Submit path.
//
//	cl, _ := heron.NewCluster(heron.ClusterConfig{Nodes: 8, HTTPAddr: "127.0.0.1:0"})
//	defer cl.Close()
//	cl.AddTenant("ads", heron.Quota{Resources: heron.Resource{CPU: 32}}, 0)
//	h, err := cl.Submit("ads", spec, cfg)
type Cluster struct {
	name      string
	sub       *multitenant.Substrate
	obs       *observability.Server
	stateRoot string

	mu      sync.Mutex
	handles map[string]*Handle
	closed  bool
}

// NewCluster builds the shared substrate and, when configured, its
// observability endpoint.
func NewCluster(cc ClusterConfig) (*Cluster, error) {
	if cc.Name == "" {
		cc.Name = "cluster"
	}
	if cc.Nodes <= 0 {
		cc.Nodes = 4
	}
	if cc.NodeResources.IsZero() {
		cc.NodeResources = Resource{CPU: 64, RAMMB: 64 * 1024, DiskMB: 64 * 1024}
	}
	c := &Cluster{
		name:      cc.Name,
		sub:       multitenant.NewSubstrate(cc.Name, cc.Nodes, cc.NodeResources),
		stateRoot: "multitenant/" + cc.Name,
		handles:   map[string]*Handle{},
	}
	if cc.HTTPAddr != "" {
		obs, err := observability.StartCluster(observability.ClusterOptions{
			Addr:    cc.HTTPAddr,
			Cluster: cc.Name,
			Views:   c.views,
			Rollup:  c.rollup,
			Health:  c.healthOf,
			Pprof:   cc.HTTPPprof,
		})
		if err != nil {
			return nil, fmt.Errorf("heron: cluster observability server: %w", err)
		}
		c.obs = obs
	}
	return c, nil
}

// AddTenant registers (or re-quotas) a tenant. Higher priority wins
// launch ordering when the substrate is contended; quota changes apply to
// future admissions only.
func (c *Cluster) AddTenant(name string, q Quota, priority int) error {
	return c.sub.AddTenant(name, q, priority)
}

// Submit admits a topology for a tenant and launches it on the shared
// substrate. The config keeps its data-plane settings but the scheduler,
// framework, and state root are the cluster's: every member runs the
// "multitenant" scheduler against the shared node pool and state tree,
// and the per-Handle observability server is replaced by the cluster
// endpoint. Admission rejects unknown tenants, duplicate topology names
// (whose statemgr keys and checkpoint namespaces would collide), and
// plans whose footprint would push the tenant over quota — all before any
// container launches.
func (c *Cluster) Submit(tenantName string, spec *api.Spec, cfg *Config) (*Handle, error) {
	if spec == nil || spec.Topology == nil {
		return nil, errors.New("heron: nil spec")
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("heron: cluster closed")
	}
	c.mu.Unlock()
	if cfg == nil {
		cfg = NewConfig()
	} else {
		cfg = cfg.Clone()
	}
	name := spec.Topology.Name
	cfg.SchedulerName = "multitenant"
	cfg.StateRoot = c.stateRoot
	cfg.HTTPAddr = "" // the cluster endpoint serves all tenants
	cfg.Framework = &multitenant.Binding{Sub: c.sub, Tenant: tenantName, Topology: name}
	h, err := submit(spec, cfg, submitHooks{
		admitPlan: func(plan *core.PackingPlan, tmAsk core.Resource) error {
			return c.sub.AdmitTopology(tenantName, name, plan, tmAsk)
		},
		admitUpdate: func(current, proposed *core.PackingPlan) error {
			return c.sub.AdmitUpdate(name, current, proposed)
		},
		onKill: func() {
			c.sub.ReleaseTopology(name)
			c.mu.Lock()
			delete(c.handles, name)
			c.mu.Unlock()
		},
	})
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.handles[name] = h
	c.mu.Unlock()
	return h, nil
}

// Kill tears down one topology and releases its quota reservation.
func (c *Cluster) Kill(topology string) error {
	c.mu.Lock()
	h, ok := c.handles[topology]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTopology, topology)
	}
	return h.Kill()
}

// Handle returns the live handle of a running topology.
func (c *Cluster) Handle(topology string) (*Handle, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.handles[topology]
	return h, ok
}

// List returns the names of all running topologies, sorted.
func (c *Cluster) List() []string { return c.sub.Topologies() }

// Tenants snapshots every tenant's quota accounting.
func (c *Cluster) Tenants() []TenantStatus { return c.sub.Tenants() }

// ObservabilityAddr returns the shared endpoint's bound address (""
// when ClusterConfig.HTTPAddr was not set).
func (c *Cluster) ObservabilityAddr() string {
	if c.obs == nil {
		return ""
	}
	return c.obs.Addr()
}

// Close kills every running topology and stops the shared endpoint.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	hs := make([]*Handle, 0, len(c.handles))
	for _, h := range c.handles {
		hs = append(hs, h)
	}
	c.mu.Unlock()
	var errs []error
	for _, h := range hs {
		if err := h.Kill(); err != nil {
			errs = append(errs, err)
		}
	}
	if c.obs != nil {
		if err := c.obs.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// views snapshots every running topology's merged metrics view for the
// shared endpoint.
func (c *Cluster) views() map[string]*metrics.TopologyView {
	c.mu.Lock()
	hs := make(map[string]*Handle, len(c.handles))
	for n, h := range c.handles {
		hs[n] = h
	}
	c.mu.Unlock()
	out := make(map[string]*metrics.TopologyView, len(hs))
	for n, h := range hs {
		out[n] = h.Metrics()
	}
	return out
}

// clusterNode is one node's utilization in the /cluster rollup.
type clusterNode struct {
	Name     string   `json:"name"`
	Capacity Resource `json:"capacity"`
	Used     Resource `json:"used"`
}

// clusterTopology is one running topology in the /cluster rollup.
type clusterTopology struct {
	Name       string  `json:"name"`
	Tenant     string  `json:"tenant"`
	Containers []int32 `json:"containers"`
}

// rollup builds the /cluster payload: tenants with quota accounting,
// per-node utilization, and the running topologies.
func (c *Cluster) rollup() any {
	var nodes []clusterNode
	for _, st := range c.sub.Cluster().Stats() {
		nodes = append(nodes, clusterNode{Name: st.Name, Capacity: st.Capacity, Used: st.Used})
	}
	var topos []clusterTopology
	for _, name := range c.sub.Topologies() {
		tenantName, _ := c.sub.TenantOf(name)
		topos = append(topos, clusterTopology{
			Name: name, Tenant: tenantName,
			Containers: c.sub.Cluster().Containers(name),
		})
	}
	return struct {
		Cluster    string            `json:"cluster"`
		Tenants    []TenantStatus    `json:"tenants"`
		Nodes      []clusterNode     `json:"nodes"`
		Topologies []clusterTopology `json:"topologies"`
	}{c.name, c.sub.Tenants(), nodes, topos}
}

// healthOf resolves one topology's health status for /health.
func (c *Cluster) healthOf(topology string) (any, bool) {
	c.mu.Lock()
	h, ok := c.handles[topology]
	c.mu.Unlock()
	if !ok || h.health == nil {
		return nil, false
	}
	return h.health.Status(), true
}
