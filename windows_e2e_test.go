package heron

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"heron/api"
	"heron/windows"
)

// numberSpout emits 0..max-1 then idles.
type numberSpout struct {
	out  api.SpoutCollector
	next int64
	max  int64
}

func (s *numberSpout) Open(_ api.TopologyContext, out api.SpoutCollector) error {
	s.out = out
	return nil
}

func (s *numberSpout) NextTuple() bool {
	if s.next >= s.max {
		return false
	}
	s.out.Emit("", nil, s.next)
	s.next++
	return true
}

func (s *numberSpout) Ack(any)      {}
func (s *numberSpout) Fail(any)     {}
func (s *numberSpout) Close() error { return nil }

// TestCountWindowEndToEnd runs tumbling count windows inside the real
// engine: 1000 numbers through windows of 100, summed per window by the
// handler and verified downstream.
func TestCountWindowEndToEnd(t *testing.T) {
	const n, win = 1000, 100
	var windowsSeen atomic.Int64
	var grandTotal atomic.Int64
	var mu sync.Mutex
	var sums []int64

	b := api.NewTopologyBuilder("win-" + t.Name())
	b.SetSpout("nums", func() api.Spout { return &numberSpout{max: n} }, 1).
		OutputFields("n")
	b.SetBolt("window", func() api.Bolt {
		return windows.NewTumblingCountWindow(win, func(w windows.Window, out api.BoltCollector) {
			var sum int64
			for _, tp := range w.Tuples {
				sum += tp.Int(0)
			}
			out.Emit("", w.Tuples, sum)
		})
	}, 1).GlobalGrouping("nums", "").OutputFields("sum")
	b.SetBolt("sink", func() api.Bolt {
		return &funcBolt{fn: func(tp api.Tuple) {
			windowsSeen.Add(1)
			grandTotal.Add(tp.Int(0))
			mu.Lock()
			sums = append(sums, tp.Int(0))
			mu.Unlock()
		}}
	}, 1).GlobalGrouping("window", "")
	spec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	h, err := Submit(spec, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Kill()
	if err := h.WaitRunning(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 120*time.Second, "all windows", func() bool {
		return windowsSeen.Load() == n/win
	})
	// Sum over all windows = sum 0..999.
	if want := int64(n * (n - 1) / 2); grandTotal.Load() != want {
		t.Errorf("grand total = %d, want %d", grandTotal.Load(), want)
	}
	// First window is exactly sum 0..99.
	mu.Lock()
	defer mu.Unlock()
	if sums[0] != win*(win-1)/2 {
		t.Errorf("first window sum = %d", sums[0])
	}
}

// TestTimeWindowEndToEnd runs time windows driven by the engine's ticks.
func TestTimeWindowEndToEnd(t *testing.T) {
	var windowsSeen atomic.Int64
	var tuplesSeen atomic.Int64

	b := api.NewTopologyBuilder("timewin-" + t.Name())
	b.SetSpout("nums", func() api.Spout { return &numberSpout{max: 1 << 40} }, 1).
		OutputFields("n")
	b.SetBolt("window", func() api.Bolt {
		return windows.NewTumblingTimeWindow(200*time.Millisecond,
			func(w windows.Window, out api.BoltCollector) {
				out.Emit("", w.Tuples, int64(len(w.Tuples)))
			})
	}, 1).GlobalGrouping("nums", "").
		TickEvery(50 * time.Millisecond).
		OutputFields("count")
	b.SetBolt("sink", func() api.Bolt {
		return &funcBolt{fn: func(tp api.Tuple) {
			windowsSeen.Add(1)
			tuplesSeen.Add(tp.Int(0))
		}}
	}, 1).GlobalGrouping("window", "")
	spec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	h, err := Submit(spec, testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Kill()
	if err := h.WaitRunning(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 120*time.Second, "several time windows", func() bool {
		return windowsSeen.Load() >= 5 && tuplesSeen.Load() > 0
	})
}

// funcBolt adapts a function to api.Bolt for test sinks.
type funcBolt struct {
	fn  func(api.Tuple)
	out api.BoltCollector
}

func (b *funcBolt) Prepare(_ api.TopologyContext, out api.BoltCollector) error {
	b.out = out
	return nil
}

func (b *funcBolt) Execute(t api.Tuple) error {
	b.fn(t)
	b.out.Ack(t)
	return nil
}

func (b *funcBolt) Cleanup() error { return nil }
