package heron

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"heron/api"
	"heron/internal/checkpoint"
	"heron/internal/cluster"
	"heron/internal/core"
	"heron/internal/metrics"
	"heron/internal/statemgr"
)

// ckptHarness tracks the LIVE spout and bolt instances (relaunches
// replace earlier generations) so the test can compare, at quiescence,
// what the spouts claim to have emitted against what the bolts counted.
type ckptHarness struct {
	mu     sync.Mutex
	spouts map[int32]*seqSpout
	bolts  map[int32]*ckptCountBolt

	stop     atomic.Bool
	executed atomic.Int64
}

// seqSpout deterministically emits dict[seq % len(dict)] and checkpoints
// seq: after a restore it resumes from the checkpointed position, so the
// words emitted over a task's lifetime are a pure function of its final
// seq value.
type seqSpout struct {
	h    *ckptHarness
	dict []string
	out  api.SpoutCollector
	seq  atomic.Int64
}

func (s *seqSpout) Open(ctx api.TopologyContext, out api.SpoutCollector) error {
	s.out = out
	s.h.mu.Lock()
	s.h.spouts[ctx.TaskID()] = s
	s.h.mu.Unlock()
	return nil
}

func (s *seqSpout) NextTuple() bool {
	if s.h.stop.Load() {
		return false
	}
	seq := s.seq.Load()
	s.out.Emit("", nil, s.dict[seq%int64(len(s.dict))])
	s.seq.Store(seq + 1)
	// Pace the source: an unthrottled spout keeps every outbox at its
	// high-water mark, and a marker queued FIFO behind that backlog can
	// take longer than the checkpoint interval to drain — every round
	// would be abandoned before its barrier completes.
	if seq%64 == 63 {
		time.Sleep(time.Millisecond)
	}
	return true
}

func (s *seqSpout) Ack(any)      {}
func (s *seqSpout) Fail(any)     {}
func (s *seqSpout) Close() error { return nil }

func (s *seqSpout) SaveState(st api.State) error {
	st.Set("seq", strconv.AppendInt(nil, s.seq.Load(), 10))
	return nil
}

func (s *seqSpout) RestoreState(st api.State) error {
	n, err := strconv.ParseInt(string(st.Get("seq")), 10, 64)
	if err != nil {
		return err
	}
	s.seq.Store(n)
	return nil
}

// ckptCountBolt is a per-instance stateful word counter.
type ckptCountBolt struct {
	h      *ckptHarness
	mu     sync.Mutex
	counts map[string]int64
}

func (b *ckptCountBolt) Prepare(ctx api.TopologyContext, _ api.BoltCollector) error {
	b.counts = map[string]int64{}
	b.h.mu.Lock()
	b.h.bolts[ctx.TaskID()] = b
	b.h.mu.Unlock()
	return nil
}

func (b *ckptCountBolt) Execute(t api.Tuple) error {
	b.mu.Lock()
	b.counts[t.String(0)]++
	b.mu.Unlock()
	b.h.executed.Add(1)
	return nil
}

func (b *ckptCountBolt) Cleanup() error { return nil }

func (b *ckptCountBolt) SaveState(s api.State) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for w, n := range b.counts {
		s.Set(w, strconv.AppendInt(nil, n, 10))
	}
	return nil
}

func (b *ckptCountBolt) RestoreState(s api.State) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	var err error
	s.Range(func(k string, v []byte) bool {
		var n int64
		n, err = strconv.ParseInt(string(v), 10, 64)
		if err != nil {
			return false
		}
		b.counts[k] = n
		return true
	})
	return err
}

// runCheckpointRecovery is the chaos test of the checkpoint subsystem:
// run a stateful WordCount with a checkpoint interval, kill a worker
// container mid-stream, let the scheduler quiesce-and-relaunch the
// workers from the last committed checkpoint, and then verify the bolts'
// final counts EXACTLY match the spouts' deterministic emission history —
// no lost counts, no duplicates (checkpoint-based effectively-once).
func runCheckpointRecovery(t *testing.T, backendName string) {
	runCheckpointRecoveryShards(t, backendName, backendName, 0)
}

// runCheckpointRecoveryShards is runCheckpointRecovery with an explicit
// Stream Manager shard count (0 = config default); label keeps the state
// roots of variants sharing a backend apart.
func runCheckpointRecoveryShards(t *testing.T, backendName, label string, shards int) {
	const dictSize = 50
	dict := make([]string, dictSize)
	for i := range dict {
		dict[i] = fmt.Sprintf("w%02d", i)
	}
	h := &ckptHarness{spouts: map[int32]*seqSpout{}, bolts: map[int32]*ckptCountBolt{}}

	b := api.NewTopologyBuilder("ckpt-" + label)
	b.SetSpout("word", func() api.Spout {
		return &seqSpout{h: h, dict: dict}
	}, 2).OutputFields("word")
	b.SetBolt("count", func() api.Bolt {
		return &ckptCountBolt{h: h}
	}, 2).FieldsGrouping("word", "", "word")
	spec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	cfg := NewConfig()
	cfg.StateRoot = "/ckpt-" + label
	statemgr.ResetSharedStore(cfg.StateRoot)
	checkpoint.ResetSharedMemory(cfg.StateRoot)
	checkpoint.ResetSharedRedis(cfg.StateRoot)
	cfg.NumContainers = 3
	cfg.SchedulerName = "yarn"
	cfg.CheckpointInterval = 200 * time.Millisecond
	cfg.StateBackend = backendName
	if shards > 0 {
		cfg.StmgrShards = shards
	}
	if backendName == "localfs" {
		cfg.Extra = map[string]string{"checkpoint.root": t.TempDir()}
	}
	cl := cluster.New("ckpt-"+label+"-sim", 4, core.Resource{CPU: 32, RAMMB: 32768, DiskMB: 65536})
	cfg.Framework = cl

	handle, err := Submit(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer handle.Kill()
	if err := handle.WaitRunning(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// The test's own backend session polls the globally-committed epoch.
	poll, err := checkpoint.New(backendName)
	if err != nil {
		t.Fatal(err)
	}
	if err := poll.Initialize(cfg); err != nil {
		t.Fatal(err)
	}
	defer poll.Close()
	latest := func() int64 {
		id, _ := poll.LatestCommitted(handle.Name())
		return id
	}

	waitFor(t, 15*time.Second, "initial progress", func() bool {
		return h.executed.Load() > 10_000
	})
	waitFor(t, 15*time.Second, "first committed checkpoint", func() bool {
		return latest() > 0
	})
	committedBefore := latest()

	// Kill worker container 1. The checkpoint-aware YARN monitor must
	// quiesce every worker and relaunch all of them from the last
	// committed checkpoint.
	if err := cl.InjectFailure(handle.Name(), 1); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int32{1, 2, 3} {
		id := id
		waitFor(t, 15*time.Second, fmt.Sprintf("container %d relaunched", id), func() bool {
			return cl.Allocated(handle.Name(), id)
		})
	}
	waitFor(t, 15*time.Second, "state restored", func() bool {
		return handle.SumCounter(metrics.MRestoreCount) > 0
	})
	base := h.executed.Load()
	waitFor(t, 30*time.Second, "post-failure progress", func() bool {
		return h.executed.Load() > base+10_000
	})
	// Checkpointing itself must have survived the failure.
	waitFor(t, 15*time.Second, "post-recovery commit", func() bool {
		return latest() > committedBefore
	})

	// Stop the sources and let the pipeline drain.
	h.stop.Store(true)
	quiet, lastN := time.Now(), h.executed.Load()
	waitFor(t, 30*time.Second, "pipeline quiescence", func() bool {
		if n := h.executed.Load(); n != lastN {
			lastN, quiet = n, time.Now()
			return false
		}
		return time.Since(quiet) > 500*time.Millisecond
	})

	// Exact accounting: every word's final count must equal its number of
	// occurrences in [0, seq) across the live spouts. A lost tuple makes a
	// count too low; a replayed/duplicated one makes it too high.
	h.mu.Lock()
	spouts := make([]*seqSpout, 0, len(h.spouts))
	for _, s := range h.spouts {
		spouts = append(spouts, s)
	}
	bolts := make([]*ckptCountBolt, 0, len(h.bolts))
	for _, cb := range h.bolts {
		bolts = append(bolts, cb)
	}
	h.mu.Unlock()
	if len(spouts) != 2 || len(bolts) != 2 {
		t.Fatalf("live instances: %d spouts, %d bolts", len(spouts), len(bolts))
	}
	expected := map[string]int64{}
	for _, s := range spouts {
		seq := s.seq.Load()
		for i, w := range dict {
			expected[w] += seq / dictSize
			if int64(i) < seq%dictSize {
				expected[w]++
			}
		}
	}
	actual := map[string]int64{}
	for _, cb := range bolts {
		cb.mu.Lock()
		for w, n := range cb.counts {
			actual[w] += n
		}
		cb.mu.Unlock()
	}
	for _, w := range dict {
		if actual[w] != expected[w] {
			t.Errorf("word %q: counted %d, emitted %d (Δ%+d)",
				w, actual[w], expected[w], actual[w]-expected[w])
		}
	}
}

func TestCheckpointRecoveryMemory(t *testing.T)  { runCheckpointRecovery(t, "memory") }

// TestCheckpointRecoverySharded reruns the chaos test with the Stream
// Manager's data path split four ways: barrier alignment (markers chasing
// their data through per-shard rings), parked-frame replay and restore
// must all survive sharding, or the exact-count accounting fails.
func TestCheckpointRecoverySharded(t *testing.T) {
	runCheckpointRecoveryShards(t, "memory", "memory-sharded", 4)
}
func TestCheckpointRecoveryLocalFS(t *testing.T) { runCheckpointRecovery(t, "localfs") }
func TestCheckpointRecoveryRedis(t *testing.T)   { runCheckpointRecovery(t, "redis") }
