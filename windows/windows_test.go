package windows

import (
	"testing"
	"time"

	"heron/api"
)

// fakeTuple is a minimal api.Tuple.
type fakeTuple struct{ v int64 }

func (f *fakeTuple) Values() api.Values      { return api.Values{f.v} }
func (f *fakeTuple) SourceComponent() string { return "src" }
func (f *fakeTuple) Stream() string          { return "default" }
func (f *fakeTuple) String(i int) string     { panic("not a string") }
func (f *fakeTuple) Int(i int) int64         { return f.v }
func (f *fakeTuple) Float(i int) float64     { panic("not a float") }
func (f *fakeTuple) Bool(i int) bool         { panic("not a bool") }
func (f *fakeTuple) Bytes(i int) []byte      { panic("not bytes") }

// fakeCollector records acks and emissions.
type fakeCollector struct {
	acked   []api.Tuple
	emitted [][]any
}

func (c *fakeCollector) Emit(_ string, _ []api.Tuple, values ...any) {
	c.emitted = append(c.emitted, values)
}
func (c *fakeCollector) Ack(t api.Tuple)  { c.acked = append(c.acked, t) }
func (c *fakeCollector) Fail(t api.Tuple) {}

func feed(t *testing.T, b api.Bolt, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := b.Execute(&fakeTuple{v: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTumblingCountWindow(t *testing.T) {
	var windows []Window
	b := NewTumblingCountWindow(5, func(w Window, _ api.BoltCollector) {
		cp := w
		cp.Tuples = append([]api.Tuple(nil), w.Tuples...)
		windows = append(windows, cp)
	})
	col := &fakeCollector{}
	if err := b.Prepare(nil, col); err != nil {
		t.Fatal(err)
	}
	feed(t, b, 12)
	if len(windows) != 2 {
		t.Fatalf("windows = %d", len(windows))
	}
	for wi, w := range windows {
		if len(w.Tuples) != 5 {
			t.Errorf("window %d size = %d", wi, len(w.Tuples))
		}
	}
	// First window: 0..4, second: 5..9; 2 tuples still buffered un-acked.
	if windows[1].Tuples[0].Int(0) != 5 {
		t.Errorf("second window starts at %d", windows[1].Tuples[0].Int(0))
	}
	if len(col.acked) != 10 {
		t.Errorf("acked = %d, want 10 (partial window held)", len(col.acked))
	}
}

func TestSlidingCountWindow(t *testing.T) {
	var sizes []int
	var firsts []int64
	b := NewCountWindow(4, 2, func(w Window, _ api.BoltCollector) {
		sizes = append(sizes, len(w.Tuples))
		firsts = append(firsts, w.Tuples[0].Int(0))
	})
	col := &fakeCollector{}
	if err := b.Prepare(nil, col); err != nil {
		t.Fatal(err)
	}
	feed(t, b, 8)
	// Windows: [0..3], [2..5], [4..7] — every 2 tuples once 4 are buffered.
	if len(sizes) != 3 {
		t.Fatalf("windows = %d", len(sizes))
	}
	for i, want := range []int64{0, 2, 4} {
		if firsts[i] != want {
			t.Errorf("window %d starts at %d, want %d", i, firsts[i], want)
		}
	}
	// Each flush acks the 2 tuples sliding out: 6 acked after 3 windows.
	if len(col.acked) != 6 {
		t.Errorf("acked = %d", len(col.acked))
	}
}

func TestCountWindowValidation(t *testing.T) {
	cases := []api.Bolt{
		NewCountWindow(0, 1, func(Window, api.BoltCollector) {}),
		NewCountWindow(4, 0, func(Window, api.BoltCollector) {}),
		NewCountWindow(2, 4, func(Window, api.BoltCollector) {}), // slide > size
		NewCountWindow(4, 2, nil),
	}
	for i, b := range cases {
		if err := b.Prepare(nil, &fakeCollector{}); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTumblingTimeWindow(t *testing.T) {
	clock := time.Unix(1000, 0)
	b := NewTumblingTimeWindow(time.Second, nil).(*timeWindowBolt)
	var windows []Window
	b.handler = withoutContext(func(w Window, _ api.BoltCollector) {
		cp := w
		cp.Tuples = append([]api.Tuple(nil), w.Tuples...)
		windows = append(windows, cp)
	})
	b.now = func() time.Time { return clock }
	col := &fakeCollector{}
	if err := b.Prepare(nil, col); err != nil {
		t.Fatal(err)
	}
	// Three tuples inside the first second.
	for i := 0; i < 3; i++ {
		clock = clock.Add(200 * time.Millisecond)
		if err := b.Execute(&fakeTuple{v: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Tick before the window closes: nothing.
	if err := b.Tick(); err != nil {
		t.Fatal(err)
	}
	if len(windows) != 0 {
		t.Fatal("window flushed early")
	}
	// Advance past the slide boundary.
	clock = clock.Add(600 * time.Millisecond)
	if err := b.Tick(); err != nil {
		t.Fatal(err)
	}
	if len(windows) != 1 || len(windows[0].Tuples) != 3 {
		t.Fatalf("windows = %+v", windows)
	}
	// Tumbling: everything evicted and acked after the flush.
	if len(col.acked) != 3 {
		t.Errorf("acked = %d", len(col.acked))
	}
	// Next window sees only newer tuples.
	clock = clock.Add(500 * time.Millisecond)
	if err := b.Execute(&fakeTuple{v: 9}); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(600 * time.Millisecond)
	if err := b.Tick(); err != nil {
		t.Fatal(err)
	}
	if len(windows) != 2 || len(windows[1].Tuples) != 1 || windows[1].Tuples[0].Int(0) != 9 {
		t.Fatalf("second window = %+v", windows[len(windows)-1])
	}
}

func TestSlidingTimeWindowKeepsOverlap(t *testing.T) {
	clock := time.Unix(2000, 0)
	b := NewTimeWindow(2*time.Second, time.Second, nil).(*timeWindowBolt)
	var sizes []int
	b.handler = withoutContext(func(w Window, _ api.BoltCollector) { sizes = append(sizes, len(w.Tuples)) })
	b.now = func() time.Time { return clock }
	col := &fakeCollector{}
	if err := b.Prepare(nil, col); err != nil {
		t.Fatal(err)
	}
	// One tuple per 500ms for 3 seconds; flush every second.
	for i := 0; i < 6; i++ {
		clock = clock.Add(500 * time.Millisecond)
		if err := b.Execute(&fakeTuple{v: int64(i)}); err != nil {
			t.Fatal(err)
		}
		if err := b.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	// Flushes at t+1s (2 tuples), t+2s (4), t+3s (4, sliding).
	if len(sizes) != 3 {
		t.Fatalf("flushes = %d (%v)", len(sizes), sizes)
	}
	if sizes[2] != 4 {
		t.Errorf("third window = %d tuples, want 4 (2s window, 500ms spacing)", sizes[2])
	}
	// Overlap retained: acked < executed.
	if len(col.acked) >= 6 {
		t.Errorf("acked = %d, overlap not retained", len(col.acked))
	}
}

// fakeCtx is a minimal api.TopologyContext for handler pass-through tests.
type fakeCtx struct{ task int32 }

func (c *fakeCtx) TopologyName() string            { return "t" }
func (c *fakeCtx) ComponentName() string           { return "w" }
func (c *fakeCtx) ComponentIndex() int32           { return 0 }
func (c *fakeCtx) TaskID() int32                   { return c.task }
func (c *fakeCtx) ComponentParallelism(string) int { return 1 }
func (c *fakeCtx) Metrics() api.ComponentMetrics   { return nil }

// TestContextReachesHandler checks the TopologyContext given to Prepare is
// passed through to ContextHandler invocations — for both window kinds —
// and that the plain-Handler shims still work with a nil context.
func TestContextReachesHandler(t *testing.T) {
	ctx := &fakeCtx{task: 7}
	var got []int32
	h := func(c api.TopologyContext, w Window, _ api.BoltCollector) {
		got = append(got, c.TaskID())
	}

	cb := NewTumblingCountWindowContext(2, h)
	if err := cb.Prepare(ctx, &fakeCollector{}); err != nil {
		t.Fatal(err)
	}
	feed(t, cb, 2)

	clock := time.Unix(3000, 0)
	tb := NewTumblingTimeWindowContext(time.Second, h).(*timeWindowBolt)
	tb.now = func() time.Time { return clock }
	if err := tb.Prepare(ctx, &fakeCollector{}); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(1100 * time.Millisecond)
	if err := tb.Tick(); err != nil {
		t.Fatal(err)
	}

	if len(got) != 2 || got[0] != 7 || got[1] != 7 {
		t.Fatalf("handler contexts = %v, want [7 7]", got)
	}
}

// TestTimeWindowCloseBoundary pins the half-open [start, end) semantics: a
// tuple timestamped exactly at a window's close belongs to the next
// window only — it must not appear in both.
func TestTimeWindowCloseBoundary(t *testing.T) {
	clock := time.Unix(4000, 0)
	b := NewTumblingTimeWindow(time.Second, nil).(*timeWindowBolt)
	var windows [][]int64
	b.handler = withoutContext(func(w Window, _ api.BoltCollector) {
		var vs []int64
		for _, tp := range w.Tuples {
			vs = append(vs, tp.Int(0))
		}
		windows = append(windows, vs)
	})
	b.now = func() time.Time { return clock }
	col := &fakeCollector{}
	if err := b.Prepare(nil, col); err != nil {
		t.Fatal(err)
	}
	// Tuple 1 mid-window, tuple 2 exactly on the close boundary.
	clock = clock.Add(500 * time.Millisecond)
	if err := b.Execute(&fakeTuple{v: 1}); err != nil {
		t.Fatal(err)
	}
	clock = time.Unix(4001, 0)
	if err := b.Execute(&fakeTuple{v: 2}); err != nil {
		t.Fatal(err)
	}
	if err := b.Tick(); err != nil { // fires exactly at the close
		t.Fatal(err)
	}
	if len(windows) != 1 || len(windows[0]) != 1 || windows[0][0] != 1 {
		t.Fatalf("first window = %v, want [1]", windows)
	}
	// The boundary tuple must not have been evicted with the first window.
	if len(col.acked) != 1 {
		t.Fatalf("acked = %d, want 1", len(col.acked))
	}
	clock = time.Unix(4002, 0)
	if err := b.Tick(); err != nil {
		t.Fatal(err)
	}
	if len(windows) != 2 || len(windows[1]) != 1 || windows[1][0] != 2 {
		t.Fatalf("second window = %v, want [... [2]]", windows)
	}
	if len(col.acked) != 2 {
		t.Errorf("acked = %d, want 2", len(col.acked))
	}
}

func TestWindowConfig(t *testing.T) {
	ok := []Config{
		Tumbling(time.Second),
		Sliding(2*time.Second, time.Second),
		TumblingCount(10),
		SlidingCount(10, 5),
	}
	for i, c := range ok {
		if err := c.Validate(); err != nil {
			t.Errorf("config %d rejected: %v", i, err)
		}
	}
	bad := []Config{
		{},
		Sliding(time.Second, 2*time.Second), // slide > size
		SlidingCount(5, 10),                 // slide > size
		{Size: time.Second, CountSize: 5, CountSlide: 5}, // mixed
		{Size: time.Second}, // no slide
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
	if !TumblingCount(3).ByCount() || Tumbling(time.Second).ByCount() {
		t.Error("ByCount misreports")
	}
	if TumblingCount(3).TickPeriod() != 0 {
		t.Error("count windows need no ticks")
	}
	if p := Tumbling(time.Second).TickPeriod(); p <= 0 || p > time.Second {
		t.Errorf("tick period = %v", p)
	}
	if b := TumblingCount(2).NewBolt(func(api.TopologyContext, Window, api.BoltCollector) {}); b == nil {
		t.Error("NewBolt(count) = nil")
	}
	if b := Tumbling(time.Second).NewBolt(func(api.TopologyContext, Window, api.BoltCollector) {}); b == nil {
		t.Error("NewBolt(time) = nil")
	}
}
