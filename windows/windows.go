// Package windows provides windowed-aggregation bolts on top of the api
// package: count-based and time-based windows, tumbling or sliding — the
// building blocks of the real-time analytics workloads the paper's
// introduction motivates.
//
// A window bolt buffers input tuples and invokes a user handler with each
// completed window. Tuples are acknowledged only when they leave their
// last window, so under acking (at-least-once) a failure replays every
// tuple whose windows had not been fully processed.
//
// Time-based windows rely on the engine's tick mechanism: declare the
// bolt with `.TickEvery(period)` where period ≤ the window's slide.
//
//	b.SetBolt("avg", func() api.Bolt {
//	    return windows.NewTimeWindow(10*time.Second, 2*time.Second, onWindow)
//	}, 4).FieldsGrouping("trades", "", "symbol").TickEvery(500 * time.Millisecond)
package windows

import (
	"errors"
	"time"

	"heron/api"
)

// Window is one completed window handed to the Handler.
type Window struct {
	// Tuples are the window's contents in arrival order.
	Tuples []api.Tuple
	// Start and End bound the window (time windows only; zero for count
	// windows).
	Start, End time.Time
}

// Handler processes one completed window; it may emit through the
// collector (emissions are anchored to every tuple in the window, so
// downstream failures replay the whole window's inputs).
type Handler func(w Window, out api.BoltCollector)

// NewCountWindow returns a bolt that windows its input by tuple count:
// a window completes every slide tuples and contains the latest size
// tuples. slide == size gives tumbling windows; slide < size sliding
// ones.
func NewCountWindow(size, slide int, h Handler) api.Bolt {
	return &countWindowBolt{size: size, slide: slide, handler: h}
}

// NewTumblingCountWindow is NewCountWindow(size, size, h).
func NewTumblingCountWindow(size int, h Handler) api.Bolt {
	return NewCountWindow(size, size, h)
}

type countWindowBolt struct {
	size, slide int
	handler     Handler
	out         api.BoltCollector
	buf         []api.Tuple
}

// Prepare implements api.Bolt.
func (b *countWindowBolt) Prepare(_ api.TopologyContext, out api.BoltCollector) error {
	if b.size <= 0 || b.slide <= 0 || b.slide > b.size {
		return errors.New("windows: need 0 < slide <= size")
	}
	if b.handler == nil {
		return errors.New("windows: nil handler")
	}
	b.out = out
	return nil
}

// Execute implements api.Bolt.
func (b *countWindowBolt) Execute(t api.Tuple) error {
	b.buf = append(b.buf, t)
	if len(b.buf) < b.size {
		return nil
	}
	b.handler(Window{Tuples: b.buf}, b.out)
	// Tuples sliding out of the window have been fully processed.
	for _, old := range b.buf[:b.slide] {
		b.out.Ack(old)
	}
	b.buf = append(b.buf[:0], b.buf[b.slide:]...)
	return nil
}

// Cleanup implements api.Bolt: a partial window is NOT flushed — its
// tuples stay un-acked and will replay after recovery, preserving
// at-least-once window processing.
func (b *countWindowBolt) Cleanup() error { return nil }

// NewTimeWindow returns a bolt that windows its input by time: every
// slide, a window covering the last size of wall time completes.
// slide == size gives tumbling windows. The bolt must be declared with
// TickEvery(p) for some p ≤ slide; windows complete on ticks, so window
// boundaries are quantized to the tick period.
func NewTimeWindow(size, slide time.Duration, h Handler) api.Bolt {
	return &timeWindowBolt{size: size, slide: slide, handler: h}
}

// NewTumblingTimeWindow is NewTimeWindow(size, size, h).
func NewTumblingTimeWindow(size time.Duration, h Handler) api.Bolt {
	return NewTimeWindow(size, size, h)
}

type timed struct {
	t  api.Tuple
	at time.Time
}

type timeWindowBolt struct {
	size, slide time.Duration
	handler     Handler
	out         api.BoltCollector
	buf         []timed
	nextFlush   time.Time
	// lastEnd is the end of the last flushed window; late ticks extend the
	// next window backward to it so no tuple falls between windows.
	lastEnd time.Time
	// now is injectable for tests.
	now func() time.Time
}

// Prepare implements api.Bolt.
func (b *timeWindowBolt) Prepare(_ api.TopologyContext, out api.BoltCollector) error {
	if b.size <= 0 || b.slide <= 0 || b.slide > b.size {
		return errors.New("windows: need 0 < slide <= size")
	}
	if b.handler == nil {
		return errors.New("windows: nil handler")
	}
	b.out = out
	if b.now == nil {
		b.now = time.Now
	}
	start := b.now()
	b.nextFlush = start.Add(b.slide)
	b.lastEnd = start
	return nil
}

// Execute implements api.Bolt.
func (b *timeWindowBolt) Execute(t api.Tuple) error {
	b.buf = append(b.buf, timed{t: t, at: b.now()})
	return nil
}

// Tick implements api.Ticker: completed windows flush here.
func (b *timeWindowBolt) Tick() error {
	now := b.now()
	if now.Before(b.nextFlush) {
		return nil
	}
	b.nextFlush = now.Add(b.slide)
	// Windows are half-open (start, end]. The nominal start is now-size,
	// extended backward to the previous window's end when ticks arrive
	// late, so consecutive windows always cover the stream with no gap.
	start := now.Add(-b.size)
	if start.After(b.lastEnd) {
		start = b.lastEnd
	}
	w := Window{Start: start, End: now}
	for _, e := range b.buf {
		if e.at.After(start) {
			w.Tuples = append(w.Tuples, e.t)
		}
	}
	b.handler(w, b.out)
	b.lastEnd = now
	// Evict and ack tuples that can no longer appear in any future window
	// (the next window starts no earlier than min(now+slide-size, now)).
	horizon := now.Add(b.slide - b.size)
	if horizon.After(now) {
		horizon = now
	}
	kept := b.buf[:0]
	for _, e := range b.buf {
		if !e.at.After(horizon) {
			b.out.Ack(e.t)
		} else {
			kept = append(kept, e)
		}
	}
	b.buf = kept
	return nil
}

// Cleanup implements api.Bolt (see countWindowBolt.Cleanup).
func (b *timeWindowBolt) Cleanup() error { return nil }
