// Package windows provides windowed-aggregation bolts on top of the api
// package: count-based and time-based windows, tumbling or sliding — the
// building blocks of the real-time analytics workloads the paper's
// introduction motivates.
//
// A window bolt buffers input tuples and invokes a user handler with each
// completed window. Tuples are acknowledged only when they leave their
// last window, so under acking (at-least-once) a failure replays every
// tuple whose windows had not been fully processed.
//
// Time-based windows rely on the engine's tick mechanism: declare the
// bolt with `.TickEvery(period)` where period ≤ the window's slide.
//
//	b.SetBolt("avg", func() api.Bolt {
//	    return windows.NewTimeWindow(10*time.Second, 2*time.Second, onWindow)
//	}, 4).FieldsGrouping("trades", "", "symbol").TickEvery(500 * time.Millisecond)
package windows

import (
	"errors"
	"fmt"
	"time"

	"heron/api"
)

// Window is one completed window handed to the Handler.
type Window struct {
	// Tuples are the window's contents in arrival order.
	Tuples []api.Tuple
	// Start and End bound the window (time windows only; zero for count
	// windows). Windows are half-open [Start, End): a tuple timestamped
	// exactly at End belongs to the next window.
	Start, End time.Time
}

// Handler processes one completed window; it may emit through the
// collector (emissions are anchored to every tuple in the window, so
// downstream failures replay the whole window's inputs).
type Handler func(w Window, out api.BoltCollector)

// ContextHandler is a Handler that also receives the bolt's
// TopologyContext — task identity, parallelism and the metrics registry —
// so window logic can tag metrics or partition work by task index. The
// plain Handler constructors remain as shims for handlers that don't need
// the context.
type ContextHandler func(ctx api.TopologyContext, w Window, out api.BoltCollector)

// withoutContext adapts a context-free Handler to a ContextHandler.
func withoutContext(h Handler) ContextHandler {
	if h == nil {
		return nil
	}
	return func(_ api.TopologyContext, w Window, out api.BoltCollector) { h(w, out) }
}

// NewCountWindow returns a bolt that windows its input by tuple count:
// a window completes every slide tuples and contains the latest size
// tuples. slide == size gives tumbling windows; slide < size sliding
// ones.
func NewCountWindow(size, slide int, h Handler) api.Bolt {
	return NewCountWindowContext(size, slide, withoutContext(h))
}

// NewCountWindowContext is NewCountWindow for handlers that need the
// bolt's TopologyContext.
func NewCountWindowContext(size, slide int, h ContextHandler) api.Bolt {
	return &countWindowBolt{size: size, slide: slide, handler: h}
}

// NewTumblingCountWindow is NewCountWindow(size, size, h).
func NewTumblingCountWindow(size int, h Handler) api.Bolt {
	return NewCountWindow(size, size, h)
}

// NewTumblingCountWindowContext is NewCountWindowContext(size, size, h).
func NewTumblingCountWindowContext(size int, h ContextHandler) api.Bolt {
	return NewCountWindowContext(size, size, h)
}

type countWindowBolt struct {
	size, slide int
	handler     ContextHandler
	ctx         api.TopologyContext
	out         api.BoltCollector
	buf         []api.Tuple
}

// Prepare implements api.Bolt.
func (b *countWindowBolt) Prepare(ctx api.TopologyContext, out api.BoltCollector) error {
	if b.size <= 0 || b.slide <= 0 || b.slide > b.size {
		return errors.New("windows: need 0 < slide <= size")
	}
	if b.handler == nil {
		return errors.New("windows: nil handler")
	}
	b.ctx = ctx
	b.out = out
	return nil
}

// Execute implements api.Bolt.
func (b *countWindowBolt) Execute(t api.Tuple) error {
	b.buf = append(b.buf, t)
	if len(b.buf) < b.size {
		return nil
	}
	b.handler(b.ctx, Window{Tuples: b.buf}, b.out)
	// Tuples sliding out of the window have been fully processed.
	for _, old := range b.buf[:b.slide] {
		b.out.Ack(old)
	}
	b.buf = append(b.buf[:0], b.buf[b.slide:]...)
	return nil
}

// Cleanup implements api.Bolt: a partial window is NOT flushed — its
// tuples stay un-acked and will replay after recovery, preserving
// at-least-once window processing.
func (b *countWindowBolt) Cleanup() error { return nil }

// NewTimeWindow returns a bolt that windows its input by time: every
// slide, a window covering the last size of wall time completes.
// slide == size gives tumbling windows. The bolt must be declared with
// TickEvery(p) for some p ≤ slide; windows complete on ticks, so window
// boundaries are quantized to the tick period.
func NewTimeWindow(size, slide time.Duration, h Handler) api.Bolt {
	return NewTimeWindowContext(size, slide, withoutContext(h))
}

// NewTimeWindowContext is NewTimeWindow for handlers that need the
// bolt's TopologyContext.
func NewTimeWindowContext(size, slide time.Duration, h ContextHandler) api.Bolt {
	return &timeWindowBolt{size: size, slide: slide, handler: h}
}

// NewTumblingTimeWindow is NewTimeWindow(size, size, h).
func NewTumblingTimeWindow(size time.Duration, h Handler) api.Bolt {
	return NewTimeWindow(size, size, h)
}

// NewTumblingTimeWindowContext is NewTimeWindowContext(size, size, h).
func NewTumblingTimeWindowContext(size time.Duration, h ContextHandler) api.Bolt {
	return NewTimeWindowContext(size, size, h)
}

type timed struct {
	t  api.Tuple
	at time.Time
}

type timeWindowBolt struct {
	size, slide time.Duration
	handler     ContextHandler
	ctx         api.TopologyContext
	out         api.BoltCollector
	buf         []timed
	nextFlush   time.Time
	// lastEnd is the end of the last flushed window; late ticks extend the
	// next window backward to it so no tuple falls between windows.
	lastEnd time.Time
	// now is injectable for tests.
	now func() time.Time
}

// Prepare implements api.Bolt.
func (b *timeWindowBolt) Prepare(ctx api.TopologyContext, out api.BoltCollector) error {
	if b.size <= 0 || b.slide <= 0 || b.slide > b.size {
		return errors.New("windows: need 0 < slide <= size")
	}
	if b.handler == nil {
		return errors.New("windows: nil handler")
	}
	b.ctx = ctx
	b.out = out
	if b.now == nil {
		b.now = time.Now
	}
	start := b.now()
	b.nextFlush = start.Add(b.slide)
	b.lastEnd = start
	return nil
}

// Execute implements api.Bolt.
func (b *timeWindowBolt) Execute(t api.Tuple) error {
	b.buf = append(b.buf, timed{t: t, at: b.now()})
	return nil
}

// Tick implements api.Ticker: completed windows flush here.
func (b *timeWindowBolt) Tick() error {
	now := b.now()
	if now.Before(b.nextFlush) {
		return nil
	}
	b.nextFlush = now.Add(b.slide)
	// Windows are half-open [start, end). The nominal start is now-size,
	// extended backward to the previous window's end when ticks arrive
	// late, so consecutive windows always cover the stream with no gap —
	// and a tuple timestamped exactly at the close lands in the NEXT
	// window, never in both.
	start := now.Add(-b.size)
	if start.After(b.lastEnd) {
		start = b.lastEnd
	}
	w := Window{Start: start, End: now}
	for _, e := range b.buf {
		if !e.at.Before(start) && e.at.Before(now) {
			w.Tuples = append(w.Tuples, e.t)
		}
	}
	b.handler(b.ctx, w, b.out)
	b.lastEnd = now
	// Evict and ack tuples that can no longer appear in any future window.
	// The next window starts no earlier than min(now+slide-size, now), and
	// window starts are inclusive, so only tuples strictly before that
	// horizon are done.
	horizon := now.Add(b.slide - b.size)
	if horizon.After(now) {
		horizon = now
	}
	kept := b.buf[:0]
	for _, e := range b.buf {
		if e.at.Before(horizon) {
			b.out.Ack(e.t)
		} else {
			kept = append(kept, e)
		}
	}
	b.buf = kept
	return nil
}

// Cleanup implements api.Bolt (see countWindowBolt.Cleanup).
func (b *timeWindowBolt) Cleanup() error { return nil }

// Config declaratively describes a window shape — the form the streamlet
// planner (and any other topology generator) consumes. Build one with
// Tumbling, Sliding, TumblingCount or SlidingCount.
type Config struct {
	// Size and Slide describe a time window when Size > 0.
	Size, Slide time.Duration
	// CountSize and CountSlide describe a count window when CountSize > 0.
	CountSize, CountSlide int
}

// Tumbling describes a tumbling time window of the given size.
func Tumbling(size time.Duration) Config { return Config{Size: size, Slide: size} }

// Sliding describes a sliding time window: every slide, a window covering
// the last size of wall time completes.
func Sliding(size, slide time.Duration) Config { return Config{Size: size, Slide: slide} }

// TumblingCount describes a tumbling count window of n tuples.
func TumblingCount(n int) Config { return Config{CountSize: n, CountSlide: n} }

// SlidingCount describes a sliding count window: every slide tuples, a
// window containing the latest size tuples completes.
func SlidingCount(size, slide int) Config { return Config{CountSize: size, CountSlide: slide} }

// ByCount reports whether the window is count-based.
func (c Config) ByCount() bool { return c.CountSize > 0 }

// Validate checks the window shape.
func (c Config) Validate() error {
	switch {
	case c.ByCount():
		if c.Size != 0 || c.Slide != 0 {
			return errors.New("windows: config mixes count and time windowing")
		}
		if c.CountSlide <= 0 || c.CountSlide > c.CountSize {
			return fmt.Errorf("windows: need 0 < slide (%d) <= size (%d)", c.CountSlide, c.CountSize)
		}
	case c.Size > 0:
		if c.Slide <= 0 || c.Slide > c.Size {
			return fmt.Errorf("windows: need 0 < slide (%v) <= size (%v)", c.Slide, c.Size)
		}
	default:
		return errors.New("windows: empty window config")
	}
	return nil
}

// NewBolt builds the window bolt this config describes around h.
func (c Config) NewBolt(h ContextHandler) api.Bolt {
	if c.ByCount() {
		return NewCountWindowContext(c.CountSize, c.CountSlide, h)
	}
	return NewTimeWindowContext(c.Size, c.Slide, h)
}

// TickPeriod returns the tick interval a bolt built from this config must
// be declared with (TickEvery), or 0 for count windows, which need no
// ticks. Time windows tick at a quarter of the slide (floored at 1ms) so
// window boundaries stay reasonably sharp.
func (c Config) TickPeriod() time.Duration {
	if c.ByCount() {
		return 0
	}
	p := c.Slide / 4
	if p < time.Millisecond {
		p = time.Millisecond
	}
	return p
}
