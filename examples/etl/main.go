// ETL: the paper's Section VI-D production topology — events are read
// from a (simulated) Kafka cluster, filtered, aggregated by user, and the
// aggregates written to a (simulated) Redis through a pipelining client.
// Prints the live resource-category split that Figure 14 reports.
//
//	go run ./examples/etl
package main

import (
	"fmt"
	"log"
	"time"

	heron "heron"
	"heron/internal/extsvc/kafkasim"
	"heron/internal/extsvc/redissim"
	"heron/internal/workloads"
)

func main() {
	broker := kafkasim.NewBroker(8)
	types := []string{"click", "view", "scroll", "hover"}
	fmt.Println("preloading kafka with 400k events...")
	broker.Preload(50_000, func(part, i int) ([]byte, []byte) {
		return []byte(fmt.Sprintf("k%d", i)),
			workloads.EventValue(i%10_000, types[i%4], int64(i%500))
	})
	redis := redissim.NewServer(8)

	spec, timers, err := workloads.BuildETL(workloads.ETLOptions{
		Broker: broker, Redis: redis,
		Spouts: 2, Filters: 2, Aggregators: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	h, err := heron.Submit(spec, heron.NewConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer h.Kill()
	if err := h.WaitRunning(10 * time.Second); err != nil {
		log.Fatal(err)
	}

	fmt.Println("etl pipeline running (8s)...")
	var lastEvents int64
	for i := 0; i < 8; i++ {
		time.Sleep(time.Second)
		events := timers.Events.Load()
		fetch := time.Duration(timers.FetchNs.Load())
		user := time.Duration(timers.UserNs.Load())
		write := time.Duration(timers.WriteNs.Load())
		fmt.Printf("t+%ds  rate=%6.2f Mevents/min  redis-keys=%d  busy: fetch=%v user=%v write=%v\n",
			i+1, float64(events-lastEvents)*60/1e6, redis.Keys(),
			fetch.Round(time.Millisecond), user.Round(time.Millisecond), write.Round(time.Millisecond))
		lastEvents = events
	}

	// A couple of spot checks against the sink.
	if v, ok := redis.Get("agg:u1"); ok {
		fmt.Printf("sample aggregate agg:u1 = %d\n", v)
	}
	fmt.Printf("total aggregate keys: %d\n", redis.Keys())
}
