// Quickstart: the smallest complete topology — a sentence spout, a
// splitter bolt and an exclaiming printer — built with the public api
// package and run on the local scheduler.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	heron "heron"
	"heron/api"
)

// sentenceSpout emits a rotating set of sentences.
type sentenceSpout struct {
	out api.SpoutCollector
	i   int
}

var sentences = []string{
	"heron processes billions of events per day",
	"modular architectures can outperform specialized ones",
	"the stream manager routes every tuple",
}

func (s *sentenceSpout) Open(_ api.TopologyContext, out api.SpoutCollector) error {
	s.out = out
	return nil
}

func (s *sentenceSpout) NextTuple() bool {
	s.out.Emit("", nil, sentences[s.i%len(sentences)])
	s.i++
	time.Sleep(50 * time.Millisecond) // keep the demo readable
	return true
}

func (s *sentenceSpout) Ack(any)      {}
func (s *sentenceSpout) Fail(any)     {}
func (s *sentenceSpout) Close() error { return nil }

// splitBolt splits sentences into words.
type splitBolt struct{ out api.BoltCollector }

func (b *splitBolt) Prepare(_ api.TopologyContext, out api.BoltCollector) error {
	b.out = out
	return nil
}

func (b *splitBolt) Execute(t api.Tuple) error {
	sentence := t.String(0)
	start := 0
	for i := 0; i <= len(sentence); i++ {
		if i == len(sentence) || sentence[i] == ' ' {
			if i > start {
				b.out.Emit("", []api.Tuple{t}, sentence[start:i])
			}
			start = i + 1
		}
	}
	b.out.Ack(t)
	return nil
}

func (b *splitBolt) Cleanup() error { return nil }

// exclaimBolt prints each word with enthusiasm (at most a few per second).
type exclaimBolt struct {
	out  api.BoltCollector
	task int32
	n    atomic.Int64
}

func (b *exclaimBolt) Prepare(ctx api.TopologyContext, out api.BoltCollector) error {
	b.out, b.task = out, ctx.TaskID()
	return nil
}

func (b *exclaimBolt) Execute(t api.Tuple) error {
	if n := b.n.Add(1); n%10 == 0 {
		fmt.Printf("task %d: %s!!!\n", b.task, t.String(0))
	}
	b.out.Ack(t)
	return nil
}

func (b *exclaimBolt) Cleanup() error { return nil }

func main() {
	builder := api.NewTopologyBuilder("quickstart")
	builder.SetSpout("sentence", func() api.Spout { return &sentenceSpout{} }, 1).
		OutputFields("sentence")
	builder.SetBolt("split", func() api.Bolt { return &splitBolt{} }, 2).
		ShuffleGrouping("sentence", "").
		OutputFields("word")
	builder.SetBolt("exclaim", func() api.Bolt { return &exclaimBolt{} }, 2).
		FieldsGrouping("split", "", "word")
	spec, err := builder.Build()
	if err != nil {
		log.Fatal(err)
	}

	h, err := heron.Submit(spec, heron.NewConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer h.Kill()
	if err := h.WaitRunning(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("topology running; ctrl-c or wait 5s")
	time.Sleep(5 * time.Second)
}
