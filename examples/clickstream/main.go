// Clickstream: sessionized clickstream analytics written against the
// high-level streamlet API instead of hand-built spouts and bolts. A
// simulated visitor population (Zipf-skewed page popularity) produces
// click events; the pipeline fans out into
//
//   - per-user session activity: tumbling 2s time windows count each
//     user's clicks per session, and
//   - page popularity: a skew-tolerant two-phase CountByKey (partial-key
//     grouped partials + a fields-grouped merge), so the hottest page
//     cannot hot-spot a single counting task.
//
// The planner fuses the stateless chains, names the stages and picks the
// distribution strategy per edge — run with -plan to see the result.
//
//	go run ./examples/clickstream
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	heron "heron"
	"heron/streamlet"
	"heron/windows"
)

var pages = []string{"/home", "/search", "/item", "/cart", "/checkout", "/help"}

func main() {
	planOnly := flag.Bool("plan", false, "print the compiled plan and exit")
	flag.Parse()

	// Click generator: 64 users, Zipf-skewed page popularity (a few hot
	// pages take most traffic — the case partial-key grouping exists for).
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(len(pages)-1))
	gen := func() (any, bool) {
		user := fmt.Sprintf("user-%02d", rng.Intn(64))
		page := pages[zipf.Uint64()]
		time.Sleep(500 * time.Microsecond) // ~2K clicks/sec
		return user + " " + page, true
	}

	var mu sync.Mutex
	sessions := map[string]int64{}  // user → clicks in latest session
	pageViews := map[string]int64{} // page → running view count

	b := streamlet.NewBuilder("clickstream")
	clicks := b.Source("clicks", gen)

	clicks.
		KeyValueBy(
			func(v any) any { return strings.Fields(v.(string))[0] },
			func(v any) any { return int64(1) },
		).
		ReduceByKeyAndWindow(windows.Tumbling(2*time.Second), func(a, v any) any {
			return a.(int64) + v.(int64)
		}).WithName("sessions").
		Consume(func(kv streamlet.KeyValue) {
			mu.Lock()
			sessions[kv.Key.(string)] = kv.Value.(int64)
			mu.Unlock()
		})

	clicks.
		KeyValueBy(func(v any) any { return strings.Fields(v.(string))[1] }, nil).
		CountByKey().WithName("pageviews").WithParallelism(3).
		Consume(func(kv streamlet.KeyValue) {
			mu.Lock()
			pageViews[kv.Key.(string)] = kv.Value.(int64)
			mu.Unlock()
		})

	if *planOnly {
		stages, err := b.Stages()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("compiled stages (name/parallelism):")
		for _, s := range stages {
			fmt.Println("  ", s)
		}
		return
	}

	spec, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	cfg := heron.NewConfig()
	cfg.NumContainers = 3
	h, err := heron.Submit(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer h.Kill()
	if err := h.WaitRunning(10 * time.Second); err != nil {
		log.Fatal(err)
	}

	fmt.Println("clickstream running (12s)...")
	for i := 0; i < 6; i++ {
		time.Sleep(2 * time.Second)
		mu.Lock()
		var total int64
		type pv struct {
			page string
			n    int64
		}
		var top []pv
		for p, n := range pageViews {
			total += n
			top = append(top, pv{p, n})
		}
		active := len(sessions)
		mu.Unlock()
		sort.Slice(top, func(i, j int) bool { return top[i].n > top[j].n })
		line := fmt.Sprintf("t+%2ds  views=%-7d sessions=%-3d top:", (i+1)*2, total, active)
		for _, e := range top {
			if len(line) > 100 {
				break
			}
			line += fmt.Sprintf(" %s=%d", e.page, e.n)
		}
		fmt.Println(line)
	}
}
