// WordCount: the paper's Section VI-A benchmark workload — spouts pick
// random words from a 450K-word dictionary and hash-partition them into
// counting bolts — run with acknowledgements on the local scheduler,
// printing live throughput and complete latency.
//
//	go run ./examples/wordcount
package main

import (
	"fmt"
	"log"
	"time"

	heron "heron"
	"heron/internal/metrics"
	"heron/internal/workloads"
)

func main() {
	spec, stats, err := workloads.BuildWordCount(workloads.WordCountOptions{
		Spouts: 4, Bolts: 4, Reliable: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := heron.NewConfig()
	cfg.AckingEnabled = true
	cfg.MaxSpoutPending = 500
	cfg.NumContainers = 3
	cfg.HTTPAddr = "127.0.0.1:0" // observability: /metrics + /topology

	h, err := heron.Submit(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer h.Kill()
	if err := h.WaitRunning(10 * time.Second); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("wordcount running (10s)... metrics at http://%s/metrics\n", h.ObservabilityAddr())
	var last int64
	for i := 0; i < 10; i++ {
		time.Sleep(time.Second)
		executed := stats.Executed.Load()
		lat := h.LatencySnapshots(metrics.MCompleteLatency)
		var count, sum int64
		for _, s := range lat {
			count += s.Count
			sum += s.Sum
		}
		meanMs := 0.0
		if count > 0 {
			meanMs = float64(sum) / float64(count) / 1e6
		}
		fmt.Printf("t+%2ds  throughput=%7.2f Mtuples/min  acked=%d  mean-latency=%.2fms\n",
			i+1, float64(executed-last)*60/1e6, stats.Acked.Load(), meanMs)
		last = executed
	}
}
