// Windowed: sliding-window analytics over a simulated trade stream — the
// real-time analytics use case the paper's introduction motivates. A
// trade spout emits (symbol, price); a time-window bolt keyed by symbol
// computes a 2-second moving average every 500 ms, driven by the engine's
// tick mechanism; a sink prints the moving averages.
//
//	go run ./examples/windowed
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	heron "heron"
	"heron/api"
	"heron/windows"
)

var symbols = []string{"HRON", "STRM", "TUPL", "ACKR"}

// tradeSpout emits random-walk prices per symbol.
type tradeSpout struct {
	out    api.SpoutCollector
	rng    *rand.Rand
	prices map[string]float64
}

func (s *tradeSpout) Open(ctx api.TopologyContext, out api.SpoutCollector) error {
	s.out = out
	s.rng = rand.New(rand.NewSource(int64(ctx.TaskID()) + 42))
	s.prices = map[string]float64{}
	for i, sym := range symbols {
		s.prices[sym] = 100 + float64(i)*25
	}
	return nil
}

func (s *tradeSpout) NextTuple() bool {
	sym := symbols[s.rng.Intn(len(symbols))]
	s.prices[sym] *= 1 + (s.rng.Float64()-0.5)*0.01
	s.out.Emit("", nil, sym, s.prices[sym])
	time.Sleep(2 * time.Millisecond) // a few hundred trades/sec
	return true
}

func (s *tradeSpout) Ack(any)      {}
func (s *tradeSpout) Fail(any)     {}
func (s *tradeSpout) Close() error { return nil }

// printBolt renders moving averages.
type printBolt struct{ out api.BoltCollector }

func (b *printBolt) Prepare(_ api.TopologyContext, out api.BoltCollector) error {
	b.out = out
	return nil
}

func (b *printBolt) Execute(t api.Tuple) error {
	fmt.Printf("  %s  avg=%8.2f  over %3d trades\n", t.String(0), t.Float(1), t.Int(2))
	b.out.Ack(t)
	return nil
}

func (b *printBolt) Cleanup() error { return nil }

func main() {
	b := api.NewTopologyBuilder("windowed")
	b.SetSpout("trades", func() api.Spout { return &tradeSpout{} }, 1).
		OutputFields("symbol", "price")
	b.SetBolt("avg", func() api.Bolt {
		return windows.NewTimeWindow(2*time.Second, 500*time.Millisecond,
			func(w windows.Window, out api.BoltCollector) {
				// One moving average per symbol in the window.
				sums := map[string]float64{}
				counts := map[string]int64{}
				for _, t := range w.Tuples {
					sums[t.String(0)] += t.Float(1)
					counts[t.String(0)]++
				}
				for sym, sum := range sums {
					avg := sum / float64(counts[sym])
					if math.IsNaN(avg) {
						continue
					}
					out.Emit("", w.Tuples, sym, avg, counts[sym])
				}
			})
	}, len(symbols)).
		FieldsGrouping("trades", "", "symbol").
		TickEvery(100*time.Millisecond).
		OutputFields("symbol", "avg", "trades")
	b.SetBolt("print", func() api.Bolt { return &printBolt{} }, 1).
		GlobalGrouping("avg", "")
	spec, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	h, err := heron.Submit(spec, heron.NewConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer h.Kill()
	if err := h.WaitRunning(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("2s moving averages, sliding every 500ms (running 6s):")
	time.Sleep(6 * time.Second)
}
