// Topwords: windowed top-K trending words over a simulated post stream,
// written against the high-level streamlet API. Posts are sampled from a
// vocabulary with shifting popularity; the pipeline splits posts into
// words, counts each word inside tumbling count windows and keeps a
// per-window leaderboard — the "trending topics" workload the paper's
// introduction motivates.
//
//	go run ./examples/topwords
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	heron "heron"
	"heron/streamlet"
	"heron/windows"
)

const (
	windowSize = 2000 // words per trending window
	topK       = 5
)

var vocabulary = []string{
	"heron", "storm", "stream", "tuple", "spout", "bolt", "window",
	"backpressure", "latency", "throughput", "acker", "topology",
	"container", "checkpoint", "rescale", "grouping", "shuffle",
}

func main() {
	// Post generator: 3-8 words per post, Zipf-skewed word choice whose
	// hot end rotates every few seconds so the trending set drifts.
	rng := rand.New(rand.NewSource(11))
	zipf := rand.NewZipf(rng, 1.4, 1, uint64(len(vocabulary)-1))
	start := time.Now()
	gen := func() (any, bool) {
		shift := int(time.Since(start) / (4 * time.Second))
		words := make([]string, 3+rng.Intn(6))
		for i := range words {
			words[i] = vocabulary[(int(zipf.Uint64())+shift)%len(vocabulary)]
		}
		time.Sleep(time.Millisecond) // ~1K posts/sec
		return strings.Join(words, " "), true
	}

	var mu sync.Mutex
	window := map[string]int64{} // counts of the window being assembled
	var windowsSeen, wordsSeen int64

	b := streamlet.NewBuilder("topwords")
	b.Source("posts", gen).
		FlatMap(func(v any) []any {
			var out []any
			for _, w := range strings.Fields(v.(string)) {
				out = append(out, w)
			}
			return out
		}).WithName("words").
		KeyValueBy(
			func(v any) any { return v },
			func(v any) any { return int64(1) },
		).
		ReduceByKeyAndWindow(windows.TumblingCount(windowSize), func(a, v any) any {
			return a.(int64) + v.(int64)
		}).WithName("trending").
		Consume(func(kv streamlet.KeyValue) {
			mu.Lock()
			defer mu.Unlock()
			window[kv.Key.(string)] += kv.Value.(int64)
			wordsSeen += kv.Value.(int64)
			if wordsSeen < windowSize*(windowsSeen+1) {
				return
			}
			// A full window's worth of counts arrived: print its top K.
			windowsSeen++
			type wc struct {
				w string
				n int64
			}
			var ranked []wc
			for w, n := range window {
				ranked = append(ranked, wc{w, n})
			}
			sort.Slice(ranked, func(i, j int) bool { return ranked[i].n > ranked[j].n })
			line := fmt.Sprintf("window %3d  top-%d:", windowsSeen, topK)
			for i, e := range ranked {
				if i == topK {
					break
				}
				line += fmt.Sprintf(" %s=%d", e.w, e.n)
			}
			fmt.Println(line)
			window = map[string]int64{}
		})

	spec, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	cfg := heron.NewConfig()
	cfg.NumContainers = 3
	h, err := heron.Submit(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer h.Kill()
	if err := h.WaitRunning(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("topwords running (12s)...")
	time.Sleep(12 * time.Second)
}
