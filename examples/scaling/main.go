// Scaling: demonstrates the Resource Manager's repack path end to end —
// a running topology's bolt parallelism is doubled, the scheduler applies
// the container diff, the Topology Master rebroadcasts the plan, and the
// new instances start receiving hash-partitioned traffic without
// restarting untouched containers.
//
// The run uses the simulated YARN cluster, so it also shows a stateful
// scheduler recovering an injected container failure.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"
	"time"

	heron "heron"
	"heron/internal/cluster"
	"heron/internal/core"
	"heron/internal/workloads"
)

func main() {
	spec, stats, err := workloads.BuildWordCount(workloads.WordCountOptions{
		Spouts: 2, Bolts: 2, DictSize: 45_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	sim := cluster.New("yarn-sim", 4, core.Resource{CPU: 32, RAMMB: 32 << 10, DiskMB: 64 << 10})
	cfg := heron.NewConfig()
	cfg.SchedulerName = "yarn" // stateful: monitors and restarts containers
	cfg.PackingAlgorithm = "binpacking"
	cfg.Framework = sim

	h, err := heron.Submit(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer h.Kill()
	if err := h.WaitRunning(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	printPlan(h)

	fmt.Println("\n→ running 2s...")
	time.Sleep(2 * time.Second)
	fmt.Printf("executed so far: %d\n", stats.Executed.Load())

	fmt.Println("\n→ scaling count: 2 → 6 instances (repack, minimal disruption)")
	if err := h.Scale(map[string]int{"count": 6}); err != nil {
		log.Fatal(err)
	}
	printPlan(h)

	fmt.Println("\n→ injecting a container failure; the stateful YARN scheduler recovers it")
	if err := sim.InjectFailure(h.Name(), 1); err != nil {
		log.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !sim.Allocated(h.Name(), 1) {
		if time.Now().After(deadline) {
			log.Fatal("container was not recovered")
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Println("container 1 reallocated and relaunched")

	before := stats.Executed.Load()
	time.Sleep(2 * time.Second)
	fmt.Printf("\nprocessing resumed: +%d tuples in 2s\n", stats.Executed.Load()-before)
}

func printPlan(h *heron.Handle) {
	plan, err := h.PackingPlan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("packing plan: %d containers, %d instances\n", len(plan.Containers), plan.NumInstances())
	for _, c := range plan.Containers {
		fmt.Printf("  container %d:", c.ID)
		for _, inst := range c.Instances {
			fmt.Printf(" %s", inst.ID)
		}
		fmt.Println()
	}
}
