// Scaling: the self-regulating health manager closing the control loop
// end to end. A deliberately slow stateful bolt drives sustained
// backpressure; the health manager senses it from the merged metrics
// view, diagnoses the bolt as underprovisioned, and rescales it at
// runtime through the checkpoint-restore protocol — no operator, no
// restart of untouched components, no lost state.
//
// The run prints the diagnosis stream as the loop converges, then lifts
// the artificial slowness: with the load gone the same loop detects the
// over-provisioned component and scales it back down. Throughput is
// compared before and after.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	heron "heron"
	"heron/api"
	"heron/internal/cluster"
	"heron/internal/core"
	"heron/internal/metrics"
)

// demoStats is shared by every spout and bolt instance across relaunches.
type demoStats struct {
	emitted  atomic.Int64
	executed atomic.Int64
	slow     atomic.Bool
}

// wordSpout emits a small dictionary round-robin and checkpoints its
// position, so a rescale's restore resumes exactly where the barrier cut.
type wordSpout struct {
	stats *demoStats
	dict  []string
	out   api.SpoutCollector
	seq   int64
}

func (s *wordSpout) Open(_ api.TopologyContext, out api.SpoutCollector) error {
	s.out = out
	return nil
}

func (s *wordSpout) NextTuple() bool {
	s.out.Emit("", nil, s.dict[s.seq%int64(len(s.dict))])
	s.seq++
	s.stats.emitted.Add(1)
	if s.seq%64 == 0 {
		time.Sleep(time.Millisecond) // pace the source
	}
	return true
}

func (s *wordSpout) Ack(any)      {}
func (s *wordSpout) Fail(any)     {}
func (s *wordSpout) Close() error { return nil }

func (s *wordSpout) SaveState(st api.State) error {
	st.Set("seq", strconv.AppendInt(nil, s.seq, 10))
	return nil
}

func (s *wordSpout) RestoreState(st api.State) error {
	if n, err := strconv.ParseInt(string(st.Get("seq")), 10, 64); err == nil {
		s.seq = n
	}
	return nil
}

// slowCountBolt is a stateful word counter with an artificial per-tuple
// stall — the "slow instance" the health manager must notice.
type slowCountBolt struct {
	stats  *demoStats
	mu     sync.Mutex
	counts map[string]int64
}

func (b *slowCountBolt) Prepare(api.TopologyContext, api.BoltCollector) error {
	b.counts = map[string]int64{}
	return nil
}

func (b *slowCountBolt) Execute(t api.Tuple) error {
	if b.stats.slow.Load() {
		time.Sleep(200 * time.Microsecond)
	}
	b.mu.Lock()
	b.counts[t.String(0)]++
	b.mu.Unlock()
	b.stats.executed.Add(1)
	return nil
}

func (b *slowCountBolt) Cleanup() error { return nil }

func (b *slowCountBolt) SaveState(s api.State) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for w, n := range b.counts {
		s.Set(w, strconv.AppendInt(nil, n, 10))
	}
	return nil
}

func (b *slowCountBolt) RestoreState(s api.State) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	s.Range(func(k string, v []byte) bool {
		if n, err := strconv.ParseInt(string(v), 10, 64); err == nil {
			b.counts[k] = n
		}
		return true
	})
	return nil
}

func main() {
	stats := &demoStats{}
	stats.slow.Store(true)

	dict := make([]string, 30)
	for i := range dict {
		dict[i] = fmt.Sprintf("word-%02d", i)
	}
	b := api.NewTopologyBuilder("health-demo")
	b.SetSpout("word", func() api.Spout {
		return &wordSpout{stats: stats, dict: dict}
	}, 2).OutputFields("word")
	b.SetBolt("count", func() api.Bolt {
		return &slowCountBolt{stats: stats}
	}, 2).FieldsGrouping("word", "", "word")
	spec, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	cfg := heron.NewConfig()
	cfg.NumContainers = 3
	cfg.SchedulerName = "yarn"
	cfg.Framework = cluster.New("health-demo-sim", 4, core.Resource{CPU: 32, RAMMB: 32 << 10, DiskMB: 64 << 10})
	cfg.CheckpointInterval = 300 * time.Millisecond
	cfg.MetricsExportInterval = 100 * time.Millisecond
	cfg.HealthInterval = 200 * time.Millisecond // enables the health manager ("autoscale" policy)
	cfg.CacheMaxBatchTuples = 1                 // keep the backlog small enough for barriers under backpressure
	cfg.HTTPAddr = "127.0.0.1:0"                // serves /health next to /metrics

	h, err := heron.Submit(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer h.Kill()
	if err := h.WaitRunning(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	printPlan(h)
	fmt.Printf("\nhealth status at http://%s/health\n", h.ObservabilityAddr())
	fmt.Println("\n→ the count bolt stalls 200µs per tuple; waiting for the health manager to act...")

	// Watch the control loop: throughput each second, plus every new
	// diagnosis as the detectors and diagnosers produce it.
	seen := map[string]bool{}
	start := time.Now()
	var slowRate float64
	for {
		time.Sleep(time.Second)
		base := stats.executed.Load()
		time.Sleep(time.Second)
		rate := float64(stats.executed.Load()-base) / 1000
		st := h.HealthStatus()
		for _, d := range st.Diagnoses {
			key := string(d.Kind) + "/" + d.Component
			if !seen[key] {
				seen[key] = true
				fmt.Printf("  diagnosis: %s on %q (%s)\n", d.Kind, d.Component, d.Detail)
			}
		}
		plan, err := h.PackingPlan()
		if err != nil {
			log.Fatal(err)
		}
		n := plan.ComponentCounts()["count"]
		fmt.Printf("  t+%2.0fs  throughput=%6.1fk tuples/s  count parallelism=%d\n",
			time.Since(start).Seconds(), rate, n)
		if n > 2 {
			slowRate = rate
			break
		}
		if time.Since(start) > 90*time.Second {
			log.Fatal("health manager did not rescale within 90s")
		}
	}

	// Lift the stall and let the control loop settle: backpressure released
	// and no action in the last few seconds. (The loop may act more than
	// once while the symptom persists.)
	fmt.Println("\n→ the health manager rescaled count; lifting the stall and letting the loop settle...")
	stats.slow.Store(false)
	settleStart := time.Now()
	for time.Since(settleStart) < 60*time.Second {
		time.Sleep(500 * time.Millisecond)
		st := h.HealthStatus()
		recent := len(st.Actions) > 0 && time.Since(st.Actions[len(st.Actions)-1].At) < 3*time.Second
		if !recent && h.Metrics().Gauge(metrics.MStmgrBPActive, "") == 0 {
			break
		}
	}

	fmt.Println("\n→ actions taken:")
	for _, a := range h.HealthStatus().Actions {
		fmt.Printf("  %s (%s on %q) %s\n", a.Resolver, a.Diagnosis.Kind, a.Diagnosis.Component, a.Detail)
	}
	printPlan(h)

	fmt.Println("\n→ throughput after convergence:")
	base := stats.executed.Load()
	time.Sleep(3 * time.Second)
	rate := float64(stats.executed.Load()-base) / 3000
	fmt.Printf("  stalled + backpressured: %6.1fk tuples/s\n", slowRate)
	fmt.Printf("  healthy + right-sized:   %6.1fk tuples/s\n", rate)
	fmt.Printf("\ntotal emitted=%d executed=%d\n", stats.emitted.Load(), stats.executed.Load())
}

func printPlan(h *heron.Handle) {
	plan, err := h.PackingPlan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("packing plan: %d containers, %d instances\n", len(plan.Containers), plan.NumInstances())
	for _, c := range plan.Containers {
		fmt.Printf("  container %d:", c.ID)
		for _, inst := range c.Instances {
			fmt.Printf(" %s", inst.ID)
		}
		fmt.Println()
	}
}
