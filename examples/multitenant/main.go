// Multitenant: two teams share one Heron cluster under different
// resource quotas — the paper's premise of topologies as tenants of a
// general-purpose scheduled cluster, in one process.
//
// The "analytics" tenant runs a clickstream page-view counter and the
// "trends" tenant a windowed top-K word ranker (the examples/clickstream
// and examples/topwords pipelines, abridged). Each submission passes
// quota admission before any container launches; the substrate places
// both topologies' containers across the shared simulated nodes with the
// fair spread/isolation policy, and one observability endpoint serves
// both tenants (/metrics labels every series by topology, /cluster rolls
// up quotas and node utilization).
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	heron "heron"
	"heron/streamlet"
	"heron/windows"
)

var pages = []string{"/home", "/search", "/item", "/cart", "/checkout"}

var vocabulary = []string{
	"heron", "storm", "stream", "tuple", "spout", "bolt", "window",
	"backpressure", "latency", "throughput", "quota", "tenant",
}

// buildClickstream counts page views from a simulated click stream.
func buildClickstream(counts *sync.Map) (*streamlet.Builder, error) {
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(len(pages)-1))
	gen := func() (any, bool) {
		time.Sleep(500 * time.Microsecond) // ~2K clicks/sec
		return pages[zipf.Uint64()], true
	}
	b := streamlet.NewBuilder("clickstream")
	b.Source("clicks", gen).
		KeyValueBy(func(v any) any { return v }, nil).
		CountByKey().WithName("pageviews").
		Consume(func(kv streamlet.KeyValue) {
			counts.Store(kv.Key.(string), kv.Value.(int64))
		})
	return b, nil
}

// buildTopwords ranks the hottest words per tumbling count window.
func buildTopwords(report func(string)) (*streamlet.Builder, error) {
	const windowSize, topK = 2000, 3
	rng := rand.New(rand.NewSource(11))
	zipf := rand.NewZipf(rng, 1.4, 1, uint64(len(vocabulary)-1))
	gen := func() (any, bool) {
		words := make([]string, 3+rng.Intn(4))
		for i := range words {
			words[i] = vocabulary[zipf.Uint64()]
		}
		time.Sleep(time.Millisecond) // ~1K posts/sec
		return strings.Join(words, " "), true
	}
	var mu sync.Mutex
	window := map[string]int64{}
	var seen int64
	b := streamlet.NewBuilder("topwords")
	b.Source("posts", gen).
		FlatMap(func(v any) []any {
			var out []any
			for _, w := range strings.Fields(v.(string)) {
				out = append(out, w)
			}
			return out
		}).WithName("words").
		KeyValueBy(func(v any) any { return v }, func(v any) any { return int64(1) }).
		ReduceByKeyAndWindow(windows.TumblingCount(windowSize), func(a, v any) any {
			return a.(int64) + v.(int64)
		}).WithName("trending").
		Consume(func(kv streamlet.KeyValue) {
			mu.Lock()
			defer mu.Unlock()
			window[kv.Key.(string)] += kv.Value.(int64)
			if seen += kv.Value.(int64); seen < windowSize {
				return
			}
			seen = 0
			type wc struct {
				w string
				n int64
			}
			var ranked []wc
			for w, n := range window {
				ranked = append(ranked, wc{w, n})
			}
			sort.Slice(ranked, func(i, j int) bool { return ranked[i].n > ranked[j].n })
			line := "trending:"
			for i, e := range ranked {
				if i == topK {
					break
				}
				line += fmt.Sprintf(" %s=%d", e.w, e.n)
			}
			window = map[string]int64{}
			report(line)
		})
	return b, nil
}

func main() {
	cl, err := heron.NewCluster(heron.ClusterConfig{
		Name:     "demo",
		Nodes:    4,
		HTTPAddr: "127.0.0.1:0",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	// Two tenants, two quota classes: analytics gets the bigger share.
	must(cl.AddTenant("analytics", heron.Quota{
		Resources:     heron.Resource{CPU: 24, RAMMB: 24 * 1024},
		MaxContainers: 8,
	}, 1))
	must(cl.AddTenant("trends", heron.Quota{
		Resources:     heron.Resource{CPU: 12, RAMMB: 12 * 1024},
		MaxContainers: 4,
	}, 0))

	var pageCounts sync.Map
	clicks, err := buildClickstream(&pageCounts)
	if err != nil {
		log.Fatal(err)
	}
	clickSpec, err := clicks.Build()
	if err != nil {
		log.Fatal(err)
	}
	trendLines := make(chan string, 16)
	trends, err := buildTopwords(func(line string) {
		select {
		case trendLines <- line:
		default:
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	trendSpec, err := trends.Build()
	if err != nil {
		log.Fatal(err)
	}

	ch, err := cl.Submit("analytics", clickSpec, nil)
	if err != nil {
		log.Fatal(err)
	}
	th, err := cl.Submit("trends", trendSpec, nil)
	if err != nil {
		log.Fatal(err)
	}
	must(ch.WaitRunning(10 * time.Second))
	must(th.WaitRunning(10 * time.Second))

	fmt.Printf("cluster %q up: topologies=%v\n", "demo", cl.List())
	fmt.Printf("observability: http://%s/metrics (all tenants), /cluster (rollup)\n\n", cl.ObservabilityAddr())

	deadline := time.After(10 * time.Second)
	tick := time.Tick(2 * time.Second)
	for running := true; running; {
		select {
		case line := <-trendLines:
			fmt.Println("[trends]   ", line)
		case <-tick:
			var total int64
			pageCounts.Range(func(_, v any) bool { total += v.(int64); return true })
			fmt.Printf("[analytics] %d page views counted\n", total)
			for _, ts := range cl.Tenants() {
				fmt.Printf("[cluster]   tenant %-9s used %.0f/%.0f CPU, %d/%d containers\n",
					ts.Name, ts.Used.CPU, ts.Quota.Resources.CPU, ts.Containers, ts.Quota.MaxContainers)
			}
		case <-deadline:
			running = false
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
