// Autotune: the paper's Section V-B future work, implemented — the
// max-spout-pending window of a live topology is driven by an AIMD
// controller from real-time throughput and latency observations, instead
// of being hand-picked from a Figure-10-style sweep.
//
// The topology starts with a deliberately tiny window (throughput-bound);
// the tuner grows it until the latency budget binds, and the printout
// shows the controller walking up the Figure 10 curve.
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"
	"time"

	heron "heron"
	"heron/internal/tuning"
	"heron/internal/workloads"
)

func main() {
	spec, stats, err := workloads.BuildWordCount(workloads.WordCountOptions{
		Spouts: 2, Bolts: 2, DictSize: 45_000, Reliable: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := heron.NewConfig()
	cfg.AckingEnabled = true
	cfg.MaxSpoutPending = 2 // start almost stalled

	h, err := heron.Submit(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer h.Kill()
	if err := h.WaitRunning(10 * time.Second); err != nil {
		log.Fatal(err)
	}

	tuner, err := tuning.New(tuning.NewHandleTarget(h), tuning.Options{
		LatencyTarget: 40 * time.Millisecond,
		Period:        500 * time.Millisecond,
		Initial:       4,
		Step:          16,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := tuner.Start(); err != nil {
		log.Fatal(err)
	}
	defer tuner.Stop()

	fmt.Println("autotuning max-spout-pending (latency target 40ms, 10s)...")
	var last int64
	for i := 0; i < 10; i++ {
		time.Sleep(time.Second)
		acked := stats.Acked.Load()
		fmt.Printf("t+%2ds  window=%-5d  acked/sec=%d\n", i+1, tuner.Window(), acked-last)
		last = acked
	}
	fmt.Println("\ncontroller decisions (last 5):")
	hist := tuner.History()
	if len(hist) > 5 {
		hist = hist[len(hist)-5:]
	}
	for _, d := range hist {
		fmt.Printf("  %-8s window=%-5d rate=%.0f/s lat=%s\n",
			d.Action, d.Window, d.Observation.AckedPerSec, d.Observation.MeanLatency.Round(time.Millisecond))
	}
}
